#include "src/core/cli.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <random>
#include <sstream>
#include <thread>

#include "src/common/error.hpp"
#include "src/common/strings.hpp"
#include "src/common/table.hpp"
#include "src/core/distribution.hpp"
#include "src/core/jsonw.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/selfcheck.hpp"
#include "src/core/sweep.hpp"
#include "src/mc/checker.hpp"
#include "src/mc/controller.hpp"
#include "src/mc/scenario.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/profiler.hpp"
#include "src/obs/summary.hpp"
#include "src/obs/timeline.hpp"
#include "src/obs/tracer.hpp"
#include "src/ops5/parser.hpp"
#include "src/pmatch/engine.hpp"
#include "src/rete/interp.hpp"
#include "src/serve/serve.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/io.hpp"
#include "src/trace/synth.hpp"

namespace mpps::core {
namespace {

// ---------------------------------------------------------------------------
// The flag table.  Everything the CLI accepts is declared here; the usage
// text is generated from it, unknown flags are rejected against it, and
// cli_commands() exposes it so tests can assert that every documented
// flag really parses.  `sample` is a valid example value for those tests.
// ---------------------------------------------------------------------------

/// Version stamp every `--json` document carries.  v2 added the `serve`
/// command with its "serve"/"latency" objects (docs/API.md has the
/// v1 → v2 delta).
constexpr int kSchemaVersion = 2;

struct FlagSpec {
  const char* name;    // "--procs", "-o", ...
  const char* value;   // metavar; nullptr for boolean flags
  const char* sample;  // a valid example value; nullptr for boolean flags
  const char* help;    // one clause, kept short enough for one help line
};

struct CommandSpec {
  const char* name;
  const char* operand;  // nullptr if the command takes no file argument
  const char* summary;  // '\n'-separated summary lines
  std::vector<FlagSpec> flags;
};

constexpr FlagSpec kJobs{"--jobs", "N", "2",
                         "worker threads for a --procs fan-out (default: auto)"};
constexpr FlagSpec kTraceOut{
    "--trace-out", "FILE", "mpps_cli.trace.json",
    "write a Chrome trace_event timeline of the simulated run(s)"};
constexpr FlagSpec kMetricsOut{"--metrics-out", "FILE", "mpps_cli.metrics.csv",
                               "write the metrics-registry CSV"};
constexpr FlagSpec kJson{"--json", nullptr, nullptr,
                         "machine-readable output (\"schema_version\": 2)"};
constexpr FlagSpec kRunModel{"--run", "0..4", "2",
                             "overhead cost model: 0 zero-overhead, 1..4 the "
                             "paper's runs (default 1)"};
constexpr FlagSpec kMapping{"--mapping", "merged|pairs", "pairs",
                            "map each bucket pair to one processor or to a "
                            "left/right pair"};
constexpr FlagSpec kAssign{"--assign", "rr|random|greedy", "greedy",
                           "bucket-to-processor assignment policy"};
constexpr FlagSpec kSeed{"--seed", "S", "7", "seed for randomized choices"};
constexpr FlagSpec kNet{"--net", "constant|mesh|torus|fattree", "mesh",
                        "interconnect model messages are charged on "
                        "(default constant: the paper's flat wire)"};
constexpr FlagSpec kNetDims{"--net-dims", "AxB[xC..]", "6x6",
                            "mesh/torus geometry (default: near-square 2-d "
                            "grid covering the machine)"};
constexpr FlagSpec kNetArity{"--net-arity", "K", "4",
                             "fat-tree switch arity (default 2)"};
constexpr FlagSpec kNetLevels{"--net-levels", "L", "6",
                              "fat-tree depth (default: smallest whose "
                              "leaves cover the machine)"};
constexpr FlagSpec kNetHopNs{"--net-hop-ns", "NS", "250",
                             "per-hop wire latency in ns (default: the cost "
                             "model's wire latency)"};

const std::vector<CommandSpec>& commands() {
  static const std::vector<CommandSpec> kCommands = {
      {"run", "<file.ops>",
       "run an OPS5 program to halt/quiescence and print its firings;\n"
       "--match-threads runs the parallel match engine and prints the\n"
       "measured per-worker skew; with --procs and/or --trace-out/\n"
       "--metrics-out the match trace is also replayed on the simulated\n"
       "MPC (one summary line per --procs entry, fanned out over --jobs)",
       {
           {"--strategy", "lex|mea", "mea",
            "conflict-resolution strategy (default lex)"},
           {"--max-cycles", "N", "500", "cycle limit (default 100000)"},
           {"--quiet", nullptr, nullptr, "suppress the per-firing lines"},
           {"--watch", "0|1|2", "1", "OPS5 watch level (default 0)"},
           {"--match-threads", "N", "2",
            "match with N parallel worker threads (default: serial)"},
           {"--match-assign", "rr|random", "random",
            "bucket partition across match workers (default rr)"},
           {"--match-batch", "N", "16",
            "fuse up to N WM changes into one BSP phase (default 1;\n"
            "requires --match-threads)"},
           {"--match-mailbox", "N", "1024",
            "per-worker mailbox backpressure threshold (default 1024;\n"
            "requires --match-threads)"},
           {"--profile", nullptr, nullptr,
            "attribute each worker's wall time to match/mailbox/barrier/"
            "merge categories (requires --match-threads)"},
           kSeed,
           kJson,
           {"--procs", "P[,P...]", "2,4",
            "simulated match-processor counts (default 8)"},
           kRunModel,
           kJobs,
           kTraceOut,
           kMetricsOut,
       }},
      {"serve", "<file.ops>",
       "serve the rule base to concurrent client sessions through the\n"
       "Session/Transaction API: each session is an isolated WM\n"
       "partition, the admission queue fuses different sessions'\n"
       "transactions into shared BSP phases, and the run ends with the\n"
       "latency report (docs/SERVING.md)",
       {
           {"--sessions", "N", "2", "concurrent client sessions (default 8)"},
           {"--transactions", "N", "8",
            "transactions each client submits (default 64)"},
           {"--seconds", "S", "1",
            "time-bound the run instead: clients submit until S seconds\n"
            "elapse (the soak mode; overrides --transactions)"},
           {"--wm-window", "W", "4",
            "live wmes retained per session -- each transaction retracts\n"
            "beyond-window wmes it submitted earlier, keeping WM and RSS\n"
            "flat (default 32)"},
           {"--match-threads", "N", "2",
            "parallel match worker threads (default 2)"},
           {"--admission-batch", "N", "4",
            "max transactions (one per session) fused into one BSP phase\n"
            "(default 16)"},
           {"--queue-capacity", "N", "32",
            "admission-queue bound; submits block while full (default 256)"},
           {"--rss-ceiling-mb", "M", "4096",
            "fail (exit 1) if peak RSS exceeds M MiB -- the soak\n"
            "assertion (default: unchecked)"},
           kSeed,
           kJson,
           kMetricsOut,
       }},
      {"trace", "<file.ops>",
       "record the program's match-phase activation trace",
       {
           {"-o", "FILE", "mpps_cli.trace", "output path (default stdout)"},
           {"--buckets", "B", "64", "hash buckets per memory (default 256)"},
       }},
      {"stats", "<file.trace>",
       "print activation statistics plus a simulated-run summary per\n"
       "--procs entry: busy skew, message histogram, hottest buckets",
       {
           {"--procs", "P[,P...]", "4,8",
            "simulated match-processor counts (default 16)"},
           kRunModel,
           {"--top", "K", "4", "hottest buckets to list (default 8)"},
           kNet,
           kNetDims,
           kNetArity,
           kNetLevels,
           kNetHopNs,
           kJobs,
           kJson,
           kTraceOut,
           kMetricsOut,
       }},
      {"simulate", "<file.trace>",
       "replay a trace on the simulated message-passing machine; a\n"
       "--procs comma list sweeps the counts in parallel (the exports\n"
       "then hold the merged registry and merged timeline)",
       {
           {"--procs", "P[,P...]", "1,2,4",
            "match-processor counts (default 8)"},
           kRunModel,
           kMapping,
           kAssign,
           kSeed,
           {"--ct", "K", "1", "dedicated constant-test processors"},
           {"--cs", "M", "1", "dedicated conflict-set processors"},
           {"--termination", "none|ack|poll", "ack",
            "cycle-termination detection model"},
           kNet,
           kNetDims,
           kNetArity,
           kNetLevels,
           kNetHopNs,
           kJobs,
           kJson,
           kTraceOut,
           kMetricsOut,
       }},
      {"sweep", "<file.trace>",
       "fan a (processors x overhead-runs) grid across worker threads\n"
       "and print the speedup table; results are bit-identical for every\n"
       "--jobs value and checked against the simulator's invariant laws",
       {
           {"--procs", "P[,P...]", "2,4",
            "processor counts (default 2,4,8,16,32)"},
           {"--runs", "R[,R...]", "1,2", "overhead runs (default 1,2,3,4)"},
           kNet,
           kNetDims,
           kNetArity,
           kNetLevels,
           kNetHopNs,
           kJobs,
           kMapping,
           kAssign,
           kSeed,
           {"--csv", nullptr, nullptr, "print the table as CSV"},
           kJson,
           kTraceOut,
           kMetricsOut,
       }},
      {"selfcheck", nullptr,
       "differential self-test: N seeded scenarios through the optimized\n"
       "AND the naive reference simulator plus the invariant laws;\n"
       "failing scenarios are shrunk to a minimal repro (exit 0 clean,\n"
       "1 on any failure)",
       {
           {"--rounds", "N", "3", "scenarios to run (default 200)"},
           kSeed,
           {"--fault",
            "none|left-token-undercharge|free-remote-send|free-remote-hop",
            "none", "inject a known bug to prove the oracle catches it"},
           kMetricsOut,
       }},
      {"check", nullptr,
       "model-check the parallel match engine: explore the mailbox-drain\n"
       "and merge orderings of every BSP round (partial-order reduced)\n"
       "and assert conflict-set equality against the serial engine on\n"
       "every explored schedule (exit 0 clean, 1 on any mismatch or a\n"
       "truncated exploration)",
       {
           {"--exhaustive", nullptr, nullptr,
            "DFS every distinguishable schedule (the default mode)"},
           {"--schedules", "N", "8",
            "fuzz N seeded random schedules instead of the DFS; every\n"
            "run gets a replayable schedule ID"},
           kSeed,
           {"--scenario", "NAME", "fused-add-delete",
            "check one corpus scenario (default: all; see --list)"},
           {"--replay", "ID", "-",
            "replay one recorded schedule ID (requires --scenario)"},
           {"--fault", "none|merge-order|drain-fifo", "none",
            "inject a known engine bug to prove the checker catches it"},
           {"--max-schedules", "N", "4096",
            "exhaustive-mode safety cap; hitting it fails the scenario\n"
            "(default 1048576)"},
           {"--list", nullptr, nullptr,
            "list the corpus scenarios and exit"},
           kMetricsOut,
       }},
      {"sections", nullptr,
       "write the synthetic Rubik/Tourney/Weaver sections as traces",
       {
           {"-o", "DIR", ".", "output directory (default '.')"},
       }},
      {"slice", "<file.trace>",
       "extract consecutive cycles -- how the paper built its sections",
       {
           {"--from", "N", "0", "first cycle (default 0)"},
           {"--cycles", "K", "2", "cycle count (default 4)"},
           {"-o", "FILE", "mpps_cli.slice.trace",
            "output path (default stdout)"},
       }},
  };
  return kCommands;
}

constexpr const char* kUsageTrailer =
    "`--trace-out` writes a Chrome trace_event JSON timeline (load it in\n"
    "chrome://tracing or https://ui.perfetto.dev); `--metrics-out` writes\n"
    "the metrics registry (plus per-cycle busy/idle for single runs) as\n"
    "CSV; `--json` output carries \"schema_version\": 2.\n"
    "docs/OBSERVABILITY.md documents the export formats; docs/SIMULATOR.md\n"
    "the sweep engine; docs/PARALLEL_MATCH.md the --match-threads engine;\n"
    "docs/SERVING.md the `serve` session/transaction engine.\n";

std::string usage_text() {
  std::ostringstream os;
  os << "usage: mpps <command> [options]\n\ncommands:\n";
  for (const CommandSpec& cmd : commands()) {
    os << "  " << cmd.name;
    if (cmd.operand != nullptr) os << " " << cmd.operand;
    os << "\n";
    std::istringstream summary(cmd.summary);
    for (std::string line; std::getline(summary, line);) {
      os << "      " << line << "\n";
    }
    for (const FlagSpec& flag : cmd.flags) {
      std::string label = flag.name;
      if (flag.value != nullptr) {
        label += ' ';
        label += flag.value;
      }
      os << "      " << label;
      const std::size_t column = 34;
      if (label.size() + 7 < column) {
        os << std::string(column - 7 - label.size(), ' ');
      } else {
        os << "\n" << std::string(column - 1, ' ');
      }
      os << " " << flag.help << "\n";
    }
    os << "\n";
  }
  os << kUsageTrailer;
  return os.str();
}

// Bad command-line input is an mpps::UsageError (common/error.hpp) —
// reported with usage exit code 2, unlike runtime failures (exit 1).
// The builders in mpps.hpp throw the same type for the same contract.

/// Flag cursor over one subcommand's argument vector, validated against
/// the command's spec on construction: an undeclared flag, a missing
/// flag value, or a stray positional argument is a UsageError.
class Args {
 public:
  Args(const std::vector<std::string>& args, const CommandSpec& spec) {
    for (std::size_t i = 0; i < args.size(); ++i) {
      const FlagSpec* flag = find_flag(spec, args[i]);
      if (flag != nullptr) {
        if (flag->value != nullptr) {
          if (i + 1 >= args.size()) {
            throw UsageError(std::string(spec.name) + ": " + flag->name +
                             " needs a value (" + flag->value + ")");
          }
          values_.emplace_back(args[i], args[i + 1]);
          ++i;
        } else {
          switches_.push_back(args[i]);
        }
        continue;
      }
      if (args[i].size() > 1 && args[i][0] == '-') {
        throw UsageError(std::string(spec.name) + ": unknown flag '" +
                         args[i] + "' (see 'mpps help')");
      }
      positionals_.push_back(args[i]);
    }
    const std::size_t max_positionals = spec.operand != nullptr ? 1 : 0;
    if (positionals_.size() > max_positionals) {
      throw UsageError(std::string(spec.name) + ": unexpected argument '" +
                       positionals_[max_positionals] + "'");
    }
  }

  /// The operand (file argument), or empty if none was given.
  [[nodiscard]] std::string positional() const {
    return positionals_.empty() ? std::string() : positionals_.front();
  }

  /// Value of `--name <value>`, or `fallback`.
  [[nodiscard]] std::string value(const std::string& name,
                                  const std::string& fallback) const {
    for (const auto& [flag, value] : values_) {
      if (flag == name) return value;
    }
    return fallback;
  }

  [[nodiscard]] bool flag(const std::string& name) const {
    return std::find(switches_.begin(), switches_.end(), name) !=
           switches_.end();
  }

 private:
  static const FlagSpec* find_flag(const CommandSpec& spec,
                                   const std::string& name) {
    for (const FlagSpec& flag : spec.flags) {
      if (name == flag.name) return &flag;
    }
    return nullptr;
  }

  std::vector<std::pair<std::string, std::string>> values_;
  std::vector<std::string> switches_;
  std::vector<std::string> positionals_;
};

long parse_long_or(const std::string& s, long fallback) {
  long v = 0;
  return parse_int(s, v) ? v : fallback;
}

/// "1,2,4" → {1, 2, 4}.  Every field must be a positive integer; a
/// malformed or non-positive field is a usage error naming the field (a
/// silently dropped entry would shrink the sweep grid unnoticed).
std::vector<std::uint32_t> parse_u32_list(const std::string& s,
                                          const std::string& flag) {
  std::vector<std::uint32_t> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t len =
        (comma == std::string::npos ? s.size() : comma) - start;
    const std::string field{trim(std::string_view(s).substr(start, len))};
    long v = 0;
    if (!parse_int(field, v) || v <= 0) {
      throw UsageError(flag + ": '" + field +
                       "' is not a positive integer (in '" + s + "')");
    }
    out.push_back(static_cast<std::uint32_t>(v));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty()) throw UsageError(flag + ": empty list");
  return out;
}

/// A flag whose explicit value must be a positive integer (`--match-batch
/// 0`, `--match-mailbox 0` and garbage are usage errors, not a silent
/// coercion to some default); returns `fallback` when the flag is absent.
std::uint64_t parse_positive_or(const Args& args, const std::string& flag,
                                std::uint64_t fallback) {
  const std::string raw = args.value(flag, "");
  if (raw.empty()) return fallback;
  long v = 0;
  if (!parse_int(raw, v) || v <= 0) {
    throw UsageError(flag + ": '" + raw + "' is not a positive integer");
  }
  return static_cast<std::uint64_t>(v);
}

/// The `--jobs N` worker-thread count; 0 (auto) when absent.  An explicit
/// value must be a positive integer — `--jobs 0` and garbage are usage
/// errors, not a silent fallback to auto.
unsigned parse_jobs(const Args& args) {
  const std::string raw = args.value("--jobs", "");
  if (raw.empty()) return 0;
  long v = 0;
  if (!parse_int(raw, v) || v <= 0) {
    throw UsageError("--jobs: '" + raw + "' is not a positive integer");
  }
  return static_cast<unsigned>(v);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw RuntimeError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

trace::Trace read_trace_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw RuntimeError("cannot open '" + path + "'");
  return trace::read_trace(file);
}

/// The uniform `--trace-out` / `--metrics-out` export pair.
struct ObsOutputs {
  std::string trace_path;
  std::string metrics_path;

  [[nodiscard]] bool any() const {
    return !trace_path.empty() || !metrics_path.empty();
  }

  static ObsOutputs from(const Args& args) {
    return ObsOutputs{args.value("--trace-out", ""),
                      args.value("--metrics-out", "")};
  }

  /// Single-run export: timeline + per-cycle busy/idle CSV + registry.
  void write(const obs::Tracer& tracer, const obs::Registry& registry,
             const sim::SimResult& result, std::ostream& note) const {
    if (!trace_path.empty()) {
      std::ofstream file(trace_path);
      if (!file) throw RuntimeError("cannot write '" + trace_path + "'");
      tracer.write_chrome_json(file);
      note << "wrote trace timeline to " << trace_path << "\n";
    }
    if (!metrics_path.empty()) {
      std::ofstream file(metrics_path);
      if (!file) throw RuntimeError("cannot write '" + metrics_path + "'");
      obs::write_metrics_csv(file, result, &registry);
      note << "wrote metrics to " << metrics_path << "\n";
    }
  }

  /// Fan-out export: merged timeline + merged registry CSV.
  void write_merged(const obs::Tracer& tracer, const obs::Registry& registry,
                    std::ostream& note) const {
    if (!trace_path.empty()) {
      std::ofstream file(trace_path);
      if (!file) throw RuntimeError("cannot write '" + trace_path + "'");
      tracer.write_chrome_json(file);
      note << "wrote trace timeline to " << trace_path << "\n";
    }
    if (!metrics_path.empty()) {
      std::ofstream file(metrics_path);
      if (!file) throw RuntimeError("cannot write '" + metrics_path + "'");
      registry.write_csv(file);
      note << "wrote metrics to " << metrics_path << "\n";
    }
  }
};

/// The shared `--net*` flag group → a validated NetworkConfig.  Geometry
/// is checked against the LARGEST machine the command will simulate
/// (`total_nodes`), so an undersized grid is a usage error (exit 2)
/// before any run starts.
sim::NetworkConfig parse_network(const Args& args, std::uint32_t total_nodes) {
  sim::NetworkConfig net;
  const std::string kind = args.value("--net", "");
  if (!kind.empty()) {
    try {
      net.kind = sim::parse_net_kind(kind);
    } catch (const RuntimeError& e) {
      throw UsageError(std::string("--net: ") + e.what());
    }
  }
  const std::string dims = args.value("--net-dims", "");
  if (!dims.empty()) {
    if (net.kind != sim::NetKind::Mesh && net.kind != sim::NetKind::Torus) {
      throw UsageError("--net-dims only applies to --net mesh|torus");
    }
    std::size_t start = 0;
    while (start <= dims.size()) {
      const std::size_t sep = dims.find('x', start);
      const std::size_t len =
          (sep == std::string::npos ? dims.size() : sep) - start;
      long v = 0;
      if (!parse_int(dims.substr(start, len), v) || v <= 0) {
        throw UsageError("--net-dims: '" + dims.substr(start, len) +
                         "' is not a positive dimension (in '" + dims + "')");
      }
      net.dims.push_back(static_cast<std::uint32_t>(v));
      if (sep == std::string::npos) break;
      start = sep + 1;
    }
  }
  for (const char* flag : {"--net-arity", "--net-levels"}) {
    if (!args.value(flag, "").empty() &&
        net.kind != sim::NetKind::FatTree) {
      throw UsageError(std::string(flag) + " only applies to --net fattree");
    }
  }
  net.arity =
      static_cast<std::uint32_t>(parse_positive_or(args, "--net-arity", 2));
  net.levels =
      static_cast<std::uint32_t>(parse_positive_or(args, "--net-levels", 0));
  net.hop_latency = SimTime::ns(static_cast<std::int64_t>(
      parse_positive_or(args, "--net-hop-ns", 0)));
  try {
    sim::validate_network(net, total_nodes);
  } catch (const RuntimeError& e) {
    throw UsageError(std::string("--net: ") + e.what());
  }
  return net;
}

/// Resolved geometry as one token: "wire", "4x8", "a2 l3".
std::string net_geometry(const sim::NetStats& net) {
  switch (net.kind) {
    case sim::NetKind::Constant:
      return "wire";
    case sim::NetKind::Mesh:
    case sim::NetKind::Torus: {
      std::string out;
      for (std::size_t i = 0; i < net.dims.size(); ++i) {
        if (i != 0) out += 'x';
        out += std::to_string(net.dims[i]);
      }
      return out;
    }
    case sim::NetKind::FatTree:
      return "a" + std::to_string(net.arity) + " l" +
             std::to_string(net.levels);
  }
  return "?";
}

/// One-line topology traffic summary (silent on the flat wire, whose
/// numbers already appear in the main table).
void print_network_line(std::ostream& out, const sim::NetStats& net) {
  if (net.kind == sim::NetKind::Constant) return;
  out << "network: " << sim::net_kind_name(net.kind) << " "
      << net_geometry(net) << ", " << net.messages << " charged messages, "
      << "avg " << std::fixed << std::setprecision(2) << net.avg_hops()
      << std::defaultfloat << " hops (max " << net.max_hops()
      << "), contention delay " << net.total_delay.micros() << " us";
  const std::size_t hot = net.hottest_link();
  if (hot < net.links.size()) {
    out << ", hottest link " << sim::net_link_name(net, hot) << " ("
        << net.links[hot].messages << " msgs, " << net.links[hot].busy.micros()
        << " us busy)";
  }
  out << "\n";
}

int parse_run_model(const Args& args, int fallback) {
  return static_cast<int>(
      parse_long_or(args.value("--run", std::to_string(fallback)), fallback));
}

sim::CostModel cost_model_for_run(int run) {
  return run == 0 ? sim::CostModel::zero_overhead()
                  : sim::CostModel::paper_run(run);
}

/// The `--json` network object of one run: resolved geometry plus the
/// charged-traffic aggregates (shared by every command emitting results).
void json_network(JsonWriter& w, const sim::NetStats& net) {
  w.begin_object();
  w.field("kind", sim::net_kind_name(net.kind));
  w.field("geometry", net_geometry(net));
  w.field("hop_latency_ns",
          static_cast<std::uint64_t>(net.hop_latency.nanos()));
  w.field("charged_messages", net.messages);
  w.field("total_latency_us", net.total_latency.micros());
  w.field("contention_delay_us", net.total_delay.micros());
  w.field("avg_hops", net.avg_hops());
  w.field("max_hops", static_cast<std::uint64_t>(net.max_hops()));
  const std::size_t hot = net.hottest_link();
  if (hot < net.links.size()) {
    w.key("hottest_link");
    w.begin_object();
    w.field("link", sim::net_link_name(net, hot));
    w.field("messages", net.links[hot].messages);
    w.field("busy_us", net.links[hot].busy.micros());
    w.end_object();
  }
  w.end_object();
}

/// One simulated-run result object of the `--json` schema (shared by
/// simulate, sweep and stats so downstream tooling parses one shape).
void json_sim_result(JsonWriter& w, std::uint32_t procs, int run,
                     const sim::SimResult& result, double speedup) {
  w.begin_object();
  w.field("procs", procs);
  w.field("run", run);
  w.field("makespan_us", result.makespan.micros());
  w.field("speedup", speedup);
  w.field("messages", result.messages);
  w.field("local_deliveries", result.local_deliveries);
  w.field("network_idle_pct", 100.0 * (1.0 - result.network_utilization()));
  w.field("avg_proc_util_pct", 100.0 * result.avg_processor_utilization());
  w.key("network");
  json_network(w, result.net);
  w.end_object();
}

// ---------------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------------

/// The `--json` profile object — the machine-readable Table 5-1-style
/// breakdown (`min_attributed_pct` is the acceptance number).
void json_profile_report(JsonWriter& w, const obs::ProfileReport& report) {
  w.begin_object();
  w.field("phases", report.phases);
  w.field("changes", report.changes);
  w.field("rounds", report.rounds);
  w.field("rounds_per_phase", report.rounds_per_phase());
  w.field("rounds_per_change", report.rounds_per_change());
  w.field("min_attributed_pct", report.min_attributed_pct());
  w.field("match_skew", report.match_skew);
  w.field("total_wall_ns", report.total_wall_ns);
  w.field("total_unattributed_ns", report.total_unattributed_ns);
  w.field("engine_wall_ns", report.engine_wall_ns);
  w.field("conflict_update_ns", report.conflict_update_ns);
  // Normalized against the engine wall (the control lane's phase spans),
  // not the summed worker walls — in [0, 100] by construction.
  w.field("conflict_update_pct", report.conflict_update_pct());
  w.key("category_totals_ns");
  w.begin_object();
  for (std::size_t c = 0; c < obs::kProfCategories; ++c) {
    w.field(obs::prof_category_name(static_cast<obs::ProfCategory>(c)),
            report.total_ns[c]);
  }
  w.end_object();
  w.key("workers");
  w.begin_array();
  for (std::size_t i = 0; i < report.workers.size(); ++i) {
    const obs::ProfileReport::Worker& worker = report.workers[i];
    w.begin_object();
    w.field("worker", static_cast<std::uint64_t>(i));
    w.field("wall_ns", worker.wall_ns);
    w.field("attributed_pct", worker.attributed_pct());
    w.field("unattributed_ns", worker.unattributed_ns);
    w.field("activations", worker.activations);
    w.key("category_ns");
    w.begin_object();
    for (std::size_t c = 0; c < obs::kProfCategories; ++c) {
      w.field(obs::prof_category_name(static_cast<obs::ProfCategory>(c)),
              worker.category_ns[c]);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("merge");
  w.begin_object();
  w.field("rounds", report.merge_rounds);
  w.field("merged_items", report.merged_items);
  w.field("max_round_items", report.max_merge_items);
  w.end_object();
  w.key("hot_buckets");
  w.begin_array();
  for (const obs::ProfileReport::HotBucket& hot : report.hot_buckets) {
    w.begin_object();
    w.field("bucket", hot.bucket);
    w.field("worker", hot.worker);
    w.field("activations", hot.activations);
    w.field("tokens_touched", hot.tokens_touched);
    w.field("share_pct", hot.share_pct);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

int cmd_run(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string path = args.positional();
  if (path.empty()) {
    err << "run: missing program file\n";
    return 2;
  }
  const ObsOutputs obs_out = ObsOutputs::from(args);
  const bool json = args.flag("--json");
  const bool profile = args.flag("--profile");
  obs::Registry registry;
  obs::Tracer tracer;
  obs::Profiler profiler;
  rete::InterpreterOptions options;
  options.strategy = args.value("--strategy", "lex") == "mea"
                         ? rete::Strategy::Mea
                         : rete::Strategy::Lex;
  options.max_cycles = static_cast<std::size_t>(
      parse_long_or(args.value("--max-cycles", "100000"), 100000));
  const bool quiet = args.flag("--quiet");
  options.out = quiet || json ? nullptr : &out;
  options.watch =
      static_cast<int>(parse_long_or(args.value("--watch", "0"), 0));
  if (obs_out.any()) options.engine.metrics = &registry;

  const auto match_threads = static_cast<std::uint32_t>(
      parse_long_or(args.value("--match-threads", "0"), 0));
  if (profile && match_threads == 0) {
    throw UsageError(
        "--profile requires --match-threads (it attributes the parallel "
        "match engine's wall time)");
  }
  if (match_threads == 0) {
    for (const char* flag : {"--match-batch", "--match-mailbox"}) {
      if (!args.value(flag, "").empty()) {
        throw UsageError(std::string(flag) +
                         " requires --match-threads (it configures the "
                         "parallel match engine)");
      }
    }
  } else {
    pmatch::ParallelOptions popts;
    popts.threads = match_threads;
    if (args.value("--match-assign", "rr") == "random") {
      popts.partition = pmatch::ParallelOptions::Partition::Random;
      popts.seed = static_cast<std::uint64_t>(
          parse_long_or(args.value("--seed", "1"), 1));
    }
    popts.max_batch = static_cast<std::uint32_t>(
        parse_positive_or(args, "--match-batch", 1));
    popts.mailbox_capacity = static_cast<std::size_t>(
        parse_positive_or(args, "--match-mailbox", 1024));
    if (profile) popts.profiler = &profiler;
    options.engine_factory = pmatch::parallel_engine_factory(popts);
  }

  const std::string source = read_file(path);
  rete::Interpreter interp(ops5::parse_program(source), options);
  interp.load_initial_wmes();
  const rete::RunResult result = interp.run();
  const char* outcome_name =
      result.outcome == rete::RunResult::Outcome::Halted ? "halted"
      : result.outcome == rete::RunResult::Outcome::Quiescent ? "quiescent"
                                                              : "cycle-limit";
  if (!json) {
    out << "outcome: " << outcome_name << "\ncycles: " << result.cycles
        << "\nfirings: " << result.firings << "\n";
    if (!quiet) {
      for (const auto& firing : interp.firings()) {
        out << "  cycle " << firing.cycle << ": " << firing.production
            << "\n";
      }
    }
  }

  std::vector<pmatch::WorkerStats> workers;
  std::uint64_t engine_rounds = 0;
  if (match_threads > 0) {
    // Measured (wall-clock) behaviour of the parallel match engine — the
    // real-hardware counterpart of the simulated skew below / in `stats`.
    const auto& engine =
        dynamic_cast<const pmatch::ParallelEngine&>(interp.match_engine());
    workers = engine.worker_stats();
    engine_rounds = engine.rounds();
    std::uint64_t total_busy = 0;
    std::uint64_t max_busy = 0;
    for (const pmatch::WorkerStats& w : workers) {
      total_busy += w.busy_ns;
      max_busy = std::max(max_busy, w.busy_ns);
    }
    if (!json) {
      out << "parallel match: " << workers.size() << " workers, "
          << engine.phases() << " BSP phases covering " << engine.changes()
          << " WM changes, " << engine_rounds << " activation rounds\n";
      for (std::size_t i = 0; i < workers.size(); ++i) {
        const pmatch::WorkerStats& w = workers[i];
        out << "  worker " << i << ": busy "
            << static_cast<double>(w.busy_ns) / 1e6 << " ms, "
            << w.activations << " activations, " << w.messages_sent
            << " messages sent, " << w.local_deliveries
            << " local, max mailbox depth " << w.max_mailbox_depth << "\n";
      }
      const double mean_busy =
          static_cast<double>(total_busy) /
          static_cast<double>(workers.empty() ? 1 : workers.size());
      const double skew =
          mean_busy > 0.0 ? static_cast<double>(max_busy) / mean_busy : 1.0;
      out << "measured busy skew: " << std::fixed << std::setprecision(2)
          << skew << std::defaultfloat
          << " (max/mean worker busy; `mpps stats` prints the simulated "
             "skew)\n";
    }
  }

  obs::ProfileReport profile_report;
  if (profile) {
    profile_report = profiler.report();
    if (!json) obs::print_profile_report(out, profile_report);
    if (!obs_out.trace_path.empty()) {
      // Measured worker timelines ride in the same Chrome trace as the
      // simulated replay below, on tids clear of the simulator's lanes.
      profiler.export_chrome_trace(tracer);
    }
  }

  std::vector<std::uint32_t> procs_list;
  std::vector<SweepOutcome> outcomes;
  const int run_model = parse_run_model(args, 1);
  const std::string procs_raw = args.value("--procs", "");
  if (obs_out.any() || !procs_raw.empty()) {
    // Replay the program's match trace on the simulated machine and export
    // the run's timeline + metrics (rete.* counters above were recorded by
    // the live engine; sim.* come from this replay).  With a --procs list
    // the entries fan out across --jobs worker threads; the exports
    // describe the first entry.
    procs_list = parse_u32_list(procs_raw.empty() ? "8" : procs_raw,
                                "--procs");
    PipelineOptions pipeline;
    pipeline.interpreter.strategy = options.strategy;
    pipeline.interpreter.max_cycles = options.max_cycles;
    const PipelineResult recorded =
        record_trace(ops5::parse_program(source), path, pipeline);
    sim::SimConfig base_config;
    base_config.costs = cost_model_for_run(run_model);
    SweepOptions sweep_options;
    sweep_options.jobs = parse_jobs(args);
    if (obs_out.any()) {
      sweep_options.metrics = &registry;
      sweep_options.tracer = &tracer;
    }
    std::vector<SweepScenario> scenarios;
    for (std::uint32_t procs : procs_list) {
      SweepScenario scenario;
      scenario.label = "p" + std::to_string(procs);
      scenario.trace = &recorded.trace;
      scenario.config = base_config;
      scenario.config.match_processors = procs;
      scenario.assignment = sim::Assignment::round_robin(
          recorded.trace.num_buckets, scenario.config.partitions());
      scenarios.push_back(std::move(scenario));
    }
    outcomes = SweepRunner(sweep_options).run(scenarios);
    if (!json) {
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        out << "simulated " << procs_list[i] << " match processors: "
            << "makespan " << outcomes[i].result.makespan.micros()
            << " us, speedup " << outcomes[i].speedup << "\n";
      }
    }
    obs_out.write(tracer, registry, outcomes.front().result,
                  json ? err : out);
  }

  if (json) {
    JsonWriter w(out);
    w.begin_object();
    w.field("schema_version", kSchemaVersion);
    w.field("command", "run");
    w.field("program", path);
    w.field("outcome", outcome_name);
    w.field("cycles", static_cast<std::uint64_t>(result.cycles));
    w.field("firings", static_cast<std::uint64_t>(result.firings));
    if (match_threads > 0) {
      w.key("parallel");
      w.begin_object();
      w.field("threads", static_cast<std::uint64_t>(workers.size()));
      w.field("rounds", engine_rounds);
      w.key("workers");
      w.begin_array();
      for (std::size_t i = 0; i < workers.size(); ++i) {
        const pmatch::WorkerStats& ws = workers[i];
        w.begin_object();
        w.field("worker", static_cast<std::uint64_t>(i));
        w.field("busy_ns", ws.busy_ns);
        w.field("idle_ns", ws.idle_ns);
        w.field("activations", ws.activations);
        w.field("messages_sent", ws.messages_sent);
        w.field("local_deliveries", ws.local_deliveries);
        w.field("max_mailbox_depth", ws.max_mailbox_depth);
        w.field("mailbox_overflows", ws.mailbox_overflows);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    if (profile) {
      w.key("profile");
      json_profile_report(w, profile_report);
    }
    if (!outcomes.empty()) {
      w.key("simulated");
      w.begin_array();
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        json_sim_result(w, procs_list[i], run_model, outcomes[i].result,
                        outcomes[i].speedup);
      }
      w.end_array();
    }
    w.end_object();
  }
  return 0;
}

/// Peak resident set (VmHWM) in MiB, or -1 where /proc is unavailable.
double peak_rss_mb() {
#ifdef __linux__
  std::ifstream status("/proc/self/status");
  for (std::string line; std::getline(status, line);) {
    if (line.rfind("VmHWM:", 0) == 0) {
      long kb = 0;
      std::istringstream fields(line.substr(6));
      fields >> kb;
      return static_cast<double>(kb) / 1024.0;
    }
  }
#endif
  return -1.0;
}

/// The serve load generator's payload: the program's top-level
/// `(make ...)` forms with constant slots — the wmes `load_initial_wmes`
/// would assert once, here re-asserted per transaction per session so the
/// workload actually exercises the program's own alpha/beta network.
std::vector<ops5::Wme> serve_payloads(const ops5::Program& program) {
  std::vector<ops5::Wme> out;
  for (const auto& make : program.initial_wmes) {
    std::vector<std::pair<Symbol, ops5::Value>> attrs;
    bool constant = true;
    for (const auto& [attr, term] : make.slots) {
      if (term.kind != ops5::Term::Kind::Constant) {
        constant = false;
        break;
      }
      attrs.emplace_back(attr, term.constant);
    }
    if (constant) out.emplace_back(make.wme_class, std::move(attrs));
  }
  return out;
}

int cmd_serve(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string path = args.positional();
  if (path.empty()) {
    err << "serve: missing program file\n";
    return 2;
  }
  const bool json = args.flag("--json");
  const auto sessions =
      static_cast<std::uint32_t>(parse_positive_or(args, "--sessions", 8));
  const std::uint64_t transactions =
      parse_positive_or(args, "--transactions", 64);
  const std::uint64_t seconds = parse_positive_or(args, "--seconds", 0);
  const auto window =
      static_cast<std::size_t>(parse_positive_or(args, "--wm-window", 32));
  const std::uint64_t rss_ceiling =
      parse_positive_or(args, "--rss-ceiling-mb", 0);
  const auto seed =
      static_cast<std::uint64_t>(parse_long_or(args.value("--seed", "1"), 1));
  const std::string metrics_path = args.value("--metrics-out", "");

  obs::Registry registry;
  serve::ServeOptions sopts;
  sopts.match.threads = static_cast<std::uint32_t>(
      parse_positive_or(args, "--match-threads", 2));
  sopts.admission_batch = static_cast<std::uint32_t>(
      parse_positive_or(args, "--admission-batch", 16));
  sopts.queue_capacity = static_cast<std::size_t>(
      parse_positive_or(args, "--queue-capacity", 256));
  sopts.max_sessions = sessions;
  sopts.metrics = &registry;

  const ops5::Program program = ops5::parse_program(read_file(path));
  std::vector<ops5::Wme> payloads = serve_payloads(program);
  if (payloads.empty()) {
    // No top-level makes: drive the queue anyway with an inert wme so the
    // latency path is still measured (it just matches nothing).
    payloads.emplace_back(
        Symbol::intern("mpps-serve-load"),
        std::vector<std::pair<Symbol, ops5::Value>>{
            {Symbol::intern("payload"), ops5::Value{1L}}});
  }

  serve::ServeEngine engine(program, sopts);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::seconds(static_cast<std::int64_t>(seconds));
  std::vector<std::string> failures(sessions);
  {
    // Closed-loop clients: each thread owns one session and submits its
    // next transaction when the previous one completes; fusion across
    // sessions comes from their natural overlap at the admission queue.
    std::vector<std::thread> clients;
    clients.reserve(sessions);
    for (std::uint32_t c = 0; c < sessions; ++c) {
      clients.emplace_back([&, c] {
        try {
          serve::SessionOptions sess;
          sess.label = "client" + std::to_string(c);
          serve::Session session = engine.open_session(sess);
          std::mt19937_64 rng(seed * 7919 + c);
          std::deque<WmeId> live;
          for (std::uint64_t t = 0;
               seconds > 0 ? std::chrono::steady_clock::now() < deadline
                           : t < transactions;
               ++t) {
            serve::Transaction tx;
            while (live.size() >= window) {
              tx.remove(live.front());
              live.pop_front();
            }
            tx.add(payloads[rng() % payloads.size()]);
            const serve::TxResult r = session.transact(std::move(tx));
            live.insert(live.end(), r.added.begin(), r.added.end());
          }
          session.close();
        } catch (const std::exception& e) {
          failures[c] = e.what();
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }
  const serve::ServeStats stats = engine.stats();
  const serve::LatencyReport latency = engine.latency_report();
  engine.shutdown();

  for (std::uint32_t c = 0; c < sessions; ++c) {
    if (!failures[c].empty()) {
      err << "serve: client" << c << " failed: " << failures[c] << "\n";
      return 1;
    }
  }
  const double rss_mb = peak_rss_mb();
  if (!json) {
    out << "served " << stats.sessions_opened << " sessions: "
        << stats.transactions << " transactions, " << stats.changes
        << " WM changes in " << stats.batches
        << " fused phases (max fan-in " << stats.max_fused
        << ", max queue depth " << stats.max_queue_depth << ")\n"
        << "activations: " << stats.activations << " (+"
        << stats.retractions << " retractions), cross-session deltas: "
        << stats.cross_session_deltas << "\n"
        << std::fixed << std::setprecision(1) << "latency: p50 "
        << latency.p50_us << " us, p95 " << latency.p95_us << " us, p99 "
        << latency.p99_us << " us, mean " << latency.mean_us
        << " us, max " << latency.max_us << " us\n"
        << "throughput: " << latency.tx_per_s << " tx/s, "
        << latency.changes_per_s << " changes/s, "
        << latency.activations_per_s << " activations/s over "
        << std::setprecision(2) << latency.wall_s << " s\n"
        << std::defaultfloat;
    if (rss_mb >= 0.0) {
      out << "peak rss: " << std::fixed << std::setprecision(1) << rss_mb
          << " MiB\n"
          << std::defaultfloat;
    }
  } else {
    JsonWriter w(out);
    w.begin_object();
    w.field("schema_version", kSchemaVersion);
    w.field("command", "serve");
    w.field("program", path);
    w.key("serve");
    w.begin_object();
    w.field("sessions", static_cast<std::uint64_t>(stats.sessions_opened));
    w.field("match_threads", static_cast<std::uint64_t>(engine.threads()));
    w.field("transactions", stats.transactions);
    w.field("rejected", stats.rejected);
    w.field("changes", stats.changes);
    w.field("batches", stats.batches);
    w.field("max_fused", stats.max_fused);
    w.field("max_queue_depth", stats.max_queue_depth);
    w.field("activations", stats.activations);
    w.field("retractions", stats.retractions);
    w.field("cross_session_deltas", stats.cross_session_deltas);
    if (rss_mb >= 0.0) w.field("peak_rss_mb", rss_mb);
    w.end_object();
    w.key("latency");
    w.begin_object();
    w.field("wall_s", latency.wall_s);
    w.field("p50_us", latency.p50_us);
    w.field("p95_us", latency.p95_us);
    w.field("p99_us", latency.p99_us);
    w.field("mean_us", latency.mean_us);
    w.field("max_us", latency.max_us);
    w.field("tx_per_s", latency.tx_per_s);
    w.field("changes_per_s", latency.changes_per_s);
    w.field("activations_per_s", latency.activations_per_s);
    w.end_object();
    w.end_object();
  }
  if (!metrics_path.empty()) {
    std::ofstream file(metrics_path);
    if (!file) throw RuntimeError("cannot write '" + metrics_path + "'");
    registry.write_csv(file);
    (json ? err : out) << "wrote metrics to " << metrics_path << "\n";
  }
  if (rss_ceiling > 0 && rss_mb > static_cast<double>(rss_ceiling)) {
    err << "serve: peak rss " << rss_mb << " MiB exceeds --rss-ceiling-mb "
        << rss_ceiling << "\n";
    return 1;
  }
  return 0;
}

int cmd_trace(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string path = args.positional();
  if (path.empty()) {
    err << "trace: missing program file\n";
    return 2;
  }
  PipelineOptions options;
  options.interpreter.engine.num_buckets = static_cast<std::uint32_t>(
      parse_long_or(args.value("--buckets", "256"), 256));
  const PipelineResult result =
      record_trace_from_source(read_file(path), path, options);
  const std::string out_path = args.value("-o", "");
  if (out_path.empty()) {
    trace::write_trace(out, result.trace);
  } else {
    std::ofstream file(out_path);
    if (!file) throw RuntimeError("cannot write '" + out_path + "'");
    trace::write_trace(file, result.trace);
    out << "wrote " << result.trace.total_activations() << " activations ("
        << result.trace.cycles.size() << " cycles) to " << out_path << "\n";
  }
  return 0;
}

int cmd_stats(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string path = args.positional();
  if (path.empty()) {
    err << "stats: missing trace file\n";
    return 2;
  }
  const trace::Trace t = read_trace_file(path);
  const trace::TraceStats stats = trace::compute_stats(t);
  const bool json = args.flag("--json");

  // The paper's uneven-distribution diagnosis, automated: replay the trace
  // on the simulated machine for every --procs entry (fanned out across
  // --jobs worker threads) and summarize skew, traffic and hot buckets.
  const std::vector<std::uint32_t> procs_list =
      parse_u32_list(args.value("--procs", "16"), "--procs");
  const int run = parse_run_model(args, 1);
  const auto top_k =
      static_cast<std::size_t>(parse_long_or(args.value("--top", "8"), 8));
  const sim::NetworkConfig network = parse_network(
      args, 1 + *std::max_element(procs_list.begin(), procs_list.end()));
  const ObsOutputs obs_out = ObsOutputs::from(args);
  obs::Registry registry;
  obs::Tracer tracer;
  SweepOptions sweep_options;
  sweep_options.jobs = parse_jobs(args);
  if (obs_out.any()) {
    sweep_options.metrics = &registry;
    sweep_options.tracer = &tracer;
  }
  std::vector<SweepScenario> scenarios;
  for (std::uint32_t procs : procs_list) {
    SweepScenario scenario;
    scenario.label = "p" + std::to_string(procs);
    scenario.trace = &t;
    scenario.config.match_processors = procs;
    scenario.config.costs = cost_model_for_run(run);
    scenario.config.network = network;
    scenario.assignment = sim::Assignment::round_robin(
        t.num_buckets, scenario.config.partitions());
    scenarios.push_back(std::move(scenario));
  }
  const std::vector<SweepOutcome> outcomes =
      SweepRunner(sweep_options).run(scenarios);

  if (json) {
    JsonWriter w(out);
    w.begin_object();
    w.field("schema_version", kSchemaVersion);
    w.field("command", "stats");
    w.field("trace", t.name);
    w.field("cycles", static_cast<std::uint64_t>(t.cycles.size()));
    w.key("activations");
    w.begin_object();
    w.field("left", stats.left);
    w.field("right", stats.right);
    w.field("total", stats.total());
    w.field("instantiations", stats.instantiations);
    w.field("left_pct", stats.left_pct());
    w.end_object();
    w.key("simulated");
    w.begin_array();
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const sim::SimResult& result = outcomes[i].result;
      const obs::RunSummary summary = obs::summarize_run(t, result, top_k);
      w.begin_object();
      w.field("procs", procs_list[i]);
      w.field("run", run);
      w.field("makespan_us", result.makespan.micros());
      w.field("speedup", outcomes[i].speedup);
      w.field("messages", summary.messages);
      w.field("local_deliveries", summary.local_deliveries);
      w.key("busy_skew");
      w.begin_object();
      w.field("p50", summary.busy_skew.p50);
      w.field("p95", summary.busy_skew.p95);
      w.field("max", summary.busy_skew.max);
      w.field("mean", summary.busy_skew.mean);
      w.end_object();
      w.field("avg_proc_util_pct", summary.avg_processor_utilization_pct);
      w.key("hot_buckets");
      w.begin_array();
      for (const obs::HotBucket& hot : summary.hot_buckets) {
        w.begin_object();
        w.field("bucket", hot.bucket);
        w.field("activations", hot.activations);
        w.field("share_pct", hot.share_pct);
        w.end_object();
      }
      w.end_array();
      w.key("network");
      json_network(w, result.net);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  } else {
    TextTable table({"trace", "cycles", "left", "right", "total",
                     "instantiations", "left %"});
    table.row()
        .cell(t.name)
        .cell(static_cast<unsigned long>(t.cycles.size()))
        .cell(static_cast<unsigned long>(stats.left))
        .cell(static_cast<unsigned long>(stats.right))
        .cell(static_cast<unsigned long>(stats.total()))
        .cell(static_cast<unsigned long>(stats.instantiations))
        .cell(stats.left_pct(), 1);
    table.print(out);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      out << "\nsimulated run summary (" << procs_list[i]
          << " match processors):\n";
      const obs::RunSummary summary =
          obs::summarize_run(t, outcomes[i].result, top_k);
      obs::print_run_summary(out, summary);
      print_network_line(out, outcomes[i].result.net);
    }
  }
  obs_out.write_merged(tracer, registry, json ? err : out);
  return 0;
}

int cmd_simulate(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string path = args.positional();
  if (path.empty()) {
    err << "simulate: missing trace file\n";
    return 2;
  }
  const trace::Trace t = read_trace_file(path);
  const bool json = args.flag("--json");

  const std::vector<std::uint32_t> procs_list =
      parse_u32_list(args.value("--procs", "8"), "--procs");

  sim::SimConfig config;
  config.match_processors = procs_list.front();
  const int run = parse_run_model(args, 1);
  config.costs = cost_model_for_run(run);
  const std::string mapping = args.value("--mapping", "merged");
  if (mapping == "pairs") {
    config.mapping = sim::MappingMode::ProcessorPairs;
  }
  config.constant_test_processors =
      static_cast<std::uint32_t>(parse_long_or(args.value("--ct", "0"), 0));
  config.conflict_set_processors =
      static_cast<std::uint32_t>(parse_long_or(args.value("--cs", "0"), 0));
  const std::string termination = args.value("--termination", "none");
  if (termination == "ack") {
    config.termination = sim::TerminationModel::AckCounting;
  } else if (termination == "poll") {
    config.termination = sim::TerminationModel::BarrierPoll;
  }
  config.network = parse_network(
      args, 1 + *std::max_element(procs_list.begin(), procs_list.end()) +
                config.constant_test_processors +
                config.conflict_set_processors);

  const std::string assign = args.value("--assign", "rr");
  const auto seed = static_cast<std::uint64_t>(
      parse_long_or(args.value("--seed", "1"), 1));
  const auto assignment_for = [&](const sim::SimConfig& cfg) {
    return assign == "random"
               ? sim::Assignment::random(t.num_buckets, cfg.partitions(), seed)
           : assign == "greedy"
               ? greedy_assignment(t, cfg.partitions(), cfg.costs)
               : sim::Assignment::round_robin(t.num_buckets,
                                              cfg.partitions());
  };

  const ObsOutputs obs_out = ObsOutputs::from(args);
  obs::Registry registry;
  obs::Tracer tracer;

  const auto write_json = [&](const std::vector<std::uint32_t>& procs,
                              const std::vector<const sim::SimResult*>& results,
                              const std::vector<double>& speedups) {
    JsonWriter w(out);
    w.begin_object();
    w.field("schema_version", kSchemaVersion);
    w.field("command", "simulate");
    w.field("trace", t.name);
    w.field("mapping", mapping == "pairs" ? "pairs" : "merged");
    w.field("assign", assign);
    w.field("termination", termination);
    w.key("results");
    w.begin_array();
    for (std::size_t i = 0; i < results.size(); ++i) {
      json_sim_result(w, procs[i], run, *results[i], speedups[i]);
    }
    w.end_array();
    w.end_object();
  };

  if (procs_list.size() == 1) {
    if (obs_out.any()) {
      config.metrics = &registry;
      config.tracer = &tracer;
    }
    const sim::SimResult result =
        sim::simulate(t, config, assignment_for(config));
    const SimTime base = sim::baseline_time(t);
    const double speedup = static_cast<double>(base.nanos()) /
                           static_cast<double>(result.makespan.nanos());
    if (json) {
      write_json(procs_list, {&result}, {speedup});
    } else {
      TextTable table({"makespan (us)", "speedup", "messages", "local",
                       "network idle %", "avg proc util %"});
      table.row()
          .cell(result.makespan.micros(), 1)
          .cell(speedup, 2)
          .cell(static_cast<unsigned long>(result.messages))
          .cell(static_cast<unsigned long>(result.local_deliveries))
          .cell(100.0 * (1.0 - result.network_utilization()), 1)
          .cell(100.0 * result.avg_processor_utilization(), 1);
      table.print(out);
      print_network_line(out, result.net);
    }
    obs_out.write(tracer, registry, result, json ? err : out);
    return 0;
  }

  // A comma list sweeps the processor counts across worker threads; the
  // exports then hold the merged registry / merged timeline.
  SweepOptions sweep_options;
  sweep_options.jobs = parse_jobs(args);
  if (obs_out.any()) {
    sweep_options.metrics = &registry;
    sweep_options.tracer = &tracer;
  }
  std::vector<SweepScenario> scenarios;
  for (std::uint32_t procs : procs_list) {
    SweepScenario scenario;
    scenario.label = "p" + std::to_string(procs);
    scenario.trace = &t;
    scenario.config = config;
    scenario.config.match_processors = procs;
    scenario.assignment = assignment_for(scenario.config);
    scenarios.push_back(std::move(scenario));
  }
  const SweepRunner runner(sweep_options);
  const std::vector<SweepOutcome> outcomes = runner.run(scenarios);

  if (json) {
    std::vector<const sim::SimResult*> results;
    std::vector<double> speedups;
    for (const SweepOutcome& outcome : outcomes) {
      results.push_back(&outcome.result);
      speedups.push_back(outcome.speedup);
    }
    write_json(procs_list, results, speedups);
  } else {
    TextTable table({"procs", "makespan (us)", "speedup", "messages", "local",
                     "network idle %", "avg proc util %"});
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const sim::SimResult& result = outcomes[i].result;
      table.row()
          .cell(static_cast<unsigned long>(procs_list[i]))
          .cell(result.makespan.micros(), 1)
          .cell(outcomes[i].speedup, 2)
          .cell(static_cast<unsigned long>(result.messages))
          .cell(static_cast<unsigned long>(result.local_deliveries))
          .cell(100.0 * (1.0 - result.network_utilization()), 1)
          .cell(100.0 * result.avg_processor_utilization(), 1);
    }
    table.print(out);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].result.net.kind != sim::NetKind::Constant) {
        out << "p" << procs_list[i] << " ";
        print_network_line(out, outcomes[i].result.net);
      }
    }
    out << "swept " << outcomes.size() << " configurations on "
        << runner.jobs() << " worker thread(s)\n";
  }
  obs_out.write_merged(tracer, registry, json ? err : out);
  return 0;
}

/// `sweep` — fan a (processors x overhead-runs) grid across worker
/// threads and print the per-run speedup columns.  Scenario order (and
/// thus every byte of the output) is fixed regardless of --jobs.
int cmd_sweep(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string path = args.positional();
  if (path.empty()) {
    err << "sweep: missing trace file\n";
    return 2;
  }
  const trace::Trace t = read_trace_file(path);
  const bool json = args.flag("--json");

  const std::vector<std::uint32_t> procs =
      parse_u32_list(args.value("--procs", "2,4,8,16,32"), "--procs");
  // Overhead runs: 0 = zero-overhead cost model, 1..4 = the paper's runs.
  std::vector<int> runs;
  {
    const std::string spec = args.value("--runs", "1,2,3,4");
    std::size_t start = 0;
    while (start <= spec.size()) {
      const std::size_t comma = spec.find(',', start);
      const std::size_t len =
          (comma == std::string::npos ? spec.size() : comma) - start;
      long v = 0;
      if (parse_int(trim(std::string_view(spec).substr(start, len)), v) &&
          v >= 0 && v <= 4) {
        runs.push_back(static_cast<int>(v));
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    if (runs.empty()) runs.push_back(1);
  }

  const bool pairs = args.value("--mapping", "merged") == "pairs";
  const std::string assign = args.value("--assign", "rr");
  const auto seed = static_cast<std::uint64_t>(
      parse_long_or(args.value("--seed", "1"), 1));
  const sim::NetworkConfig network = parse_network(
      args, 1 + *std::max_element(procs.begin(), procs.end()));

  std::vector<SweepScenario> scenarios;
  scenarios.reserve(procs.size() * runs.size());
  for (std::uint32_t p : procs) {
    for (int run : runs) {
      SweepScenario scenario;
      scenario.label = "p";
      scenario.label += std::to_string(p);
      scenario.label += "/r";
      scenario.label += std::to_string(run);
      scenario.trace = &t;
      scenario.config.match_processors = p;
      if (pairs) scenario.config.mapping = sim::MappingMode::ProcessorPairs;
      scenario.config.costs = cost_model_for_run(run);
      scenario.config.network = network;
      scenario.assignment =
          assign == "random"
              ? sim::Assignment::random(t.num_buckets,
                                        scenario.config.partitions(), seed)
          : assign == "greedy"
              ? greedy_assignment(t, scenario.config.partitions(),
                                  scenario.config.costs)
              : sim::Assignment::round_robin(t.num_buckets,
                                             scenario.config.partitions());
      scenarios.push_back(std::move(scenario));
    }
  }

  obs::Registry registry;
  obs::Tracer tracer;
  SweepOptions options;
  options.jobs = parse_jobs(args);
  options.check_invariants = true;
  const ObsOutputs obs_out = ObsOutputs::from(args);
  if (obs_out.any()) {
    options.metrics = &registry;
    options.tracer = &tracer;
  }
  const SweepRunner runner(options);
  const std::vector<SweepOutcome> outcomes = runner.run(scenarios);

  if (json) {
    JsonWriter w(out);
    w.begin_object();
    w.field("schema_version", kSchemaVersion);
    w.field("command", "sweep");
    w.field("trace", t.name);
    w.field("mapping", pairs ? "pairs" : "merged");
    w.field("assign", assign);
    w.key("results");
    w.begin_array();
    std::size_t index = 0;
    for (std::uint32_t p : procs) {
      for (int run : runs) {
        json_sim_result(w, p, run, outcomes[index].result,
                        outcomes[index].speedup);
        ++index;
      }
    }
    w.end_array();
    w.end_object();
  } else {
    std::vector<std::string> headers{"procs"};
    for (int run : runs) {
      headers.push_back("run " + std::to_string(run) + " speedup");
    }
    TextTable table(std::move(headers));
    std::size_t index = 0;
    for (std::uint32_t p : procs) {
      TextTable& row = table.row();
      row.cell(static_cast<unsigned long>(p));
      for (std::size_t r = 0; r < runs.size(); ++r) {
        row.cell(outcomes[index++].speedup, 2);
      }
    }
    if (args.flag("--csv")) {
      table.print_csv(out);
    } else {
      table.print(out);
    }
    out << "swept " << outcomes.size() << " configurations on "
        << runner.jobs() << " worker thread(s)\n";
  }
  obs_out.write_merged(tracer, registry, json ? err : out);
  return 0;
}

/// `selfcheck` — the differential + metamorphic self-test of the
/// simulator (docs/TESTING.md).  Deterministic for a fixed --seed.
int cmd_selfcheck(const Args& args, std::ostream& out, std::ostream& err) {
  SelfCheckOptions options;
  {
    const std::string raw = args.value("--rounds", "200");
    long v = 0;
    if (!parse_int(raw, v) || v <= 0) {
      throw UsageError("--rounds: '" + raw + "' is not a positive integer");
    }
    options.rounds = static_cast<std::uint64_t>(v);
  }
  options.seed = static_cast<std::uint64_t>(
      parse_long_or(args.value("--seed", "1"), 1));
  try {
    options.fault = parse_fault(args.value("--fault", "none"));
  } catch (const RuntimeError& e) {
    throw UsageError(std::string("--fault: ") + e.what());
  }
  obs::Registry registry;
  options.metrics = &registry;
  options.log = &out;

  const SelfCheckResult result = run_selfcheck(options);
  (result.ok() ? out : err) << result.summary() << "\n";

  const std::string metrics_path = args.value("--metrics-out", "");
  if (!metrics_path.empty()) {
    std::ofstream sink(metrics_path);
    if (!sink) throw RuntimeError("cannot write '" + metrics_path + "'");
    registry.write_csv(sink);
    out << "wrote metrics to " << metrics_path << "\n";
  }
  return result.ok() ? 0 : 1;
}

/// `check` — the pmatch model checker (docs/TESTING.md): schedule-
/// controlled runs of the parallel engine against the serial oracle.
int cmd_check(const Args& args, std::ostream& out, std::ostream& err) {
  const std::vector<mc::Scenario> corpus = mc::builtin_corpus();
  if (args.flag("--list")) {
    for (const mc::Scenario& s : corpus) {
      out << s.name << ": " << s.description << " (" << s.phases.size()
          << " phases, " << s.change_count() << " changes, " << s.threads
          << " threads)\n";
    }
    return 0;
  }

  mc::CheckOptions options;
  const std::string schedules_raw = args.value("--schedules", "");
  if (args.flag("--exhaustive") && !schedules_raw.empty()) {
    throw UsageError(
        "check: --exhaustive and --schedules are mutually exclusive");
  }
  if (!schedules_raw.empty()) {
    options.mode = mc::CheckOptions::Mode::Random;
    options.schedules = parse_positive_or(args, "--schedules", 64);
  }
  options.seed = static_cast<std::uint64_t>(
      parse_long_or(args.value("--seed", "1"), 1));
  options.max_schedules =
      parse_positive_or(args, "--max-schedules", options.max_schedules);
  try {
    options.fault = mc::parse_fault(args.value("--fault", "none"));
  } catch (const RuntimeError& e) {
    throw UsageError(std::string("--fault: ") + e.what());
  }

  const std::string scenario_name = args.value("--scenario", "");
  std::vector<mc::Scenario> selected;
  if (!scenario_name.empty()) {
    const mc::Scenario* s = mc::find_scenario(corpus, scenario_name);
    if (s == nullptr) {
      throw UsageError("check: unknown scenario '" + scenario_name +
                       "' (see 'mpps check --list')");
    }
    selected.push_back(*s);
  } else {
    selected = corpus;
  }

  const std::string replay_raw = args.value("--replay", "");
  if (!replay_raw.empty()) {
    if (scenario_name.empty()) {
      throw UsageError(
          "check: --replay needs --scenario (a schedule ID only means "
          "something relative to one scenario)");
    }
    options.mode = mc::CheckOptions::Mode::Replay;
    try {
      options.replay = mc::ScheduleId::parse(replay_raw);
    } catch (const RuntimeError& e) {
      throw UsageError(std::string("--replay: ") + e.what());
    }
    out << "replaying schedule " << options.replay.to_string() << " on "
        << scenario_name << "\n";
  }

  obs::Registry registry;
  const std::string metrics_path = args.value("--metrics-out", "");
  if (!metrics_path.empty()) options.metrics = &registry;

  const mc::CheckReport report = mc::check_corpus(selected, options);
  mc::print_report(report, out);
  if (options.fault != mc::Fault::None) {
    out << "fault '" << mc::to_string(options.fault)
        << "' injected: a failure above is the expected outcome\n";
  }
  if (!metrics_path.empty()) {
    std::ofstream sink(metrics_path);
    if (!sink) throw RuntimeError("cannot write '" + metrics_path + "'");
    registry.write_csv(sink);
    out << "wrote metrics to " << metrics_path << "\n";
  }
  if (!report.ok()) {
    err << "check: " << (selected.size() == 1 ? "scenario" : "corpus")
        << " FAILED (see replay hints above)\n";
    return 1;
  }
  return 0;
}

int cmd_slice(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string path = args.positional();
  if (path.empty()) {
    err << "slice: missing trace file\n";
    return 2;
  }
  const trace::Trace t = read_trace_file(path);
  const auto first = static_cast<std::size_t>(
      parse_long_or(args.value("--from", "0"), 0));
  const auto count = static_cast<std::size_t>(
      parse_long_or(args.value("--cycles", "4"), 4));
  const trace::Trace section = trace::slice(t, first, count);
  const std::string out_path = args.value("-o", "");
  if (out_path.empty()) {
    trace::write_trace(out, section);
  } else {
    std::ofstream sink(out_path);
    if (!sink) throw RuntimeError("cannot write '" + out_path + "'");
    trace::write_trace(sink, section);
    out << "wrote " << section.total_activations() << " activations ("
        << count << " cycles) to " << out_path << "\n";
  }
  return 0;
}

int cmd_sections(const Args& args, std::ostream& out, std::ostream&) {
  const std::string dir = args.value("-o", ".");
  for (const auto& [name, section] :
       {std::pair<const char*, trace::Trace>{"rubik",
                                             trace::make_rubik_section()},
        {"tourney", trace::make_tourney_section()},
        {"weaver", trace::make_weaver_section()}}) {
    const std::string path = dir + "/" + name + ".trace";
    std::ofstream file(path);
    if (!file) throw RuntimeError("cannot write '" + path + "'");
    trace::write_trace(file, section);
    out << "wrote " << path << " (" << section.total_activations()
        << " activations)\n";
  }
  return 0;
}

}  // namespace

std::vector<CliCommand> cli_commands() {
  std::vector<CliCommand> out;
  for (const CommandSpec& cmd : commands()) {
    CliCommand info;
    info.name = cmd.name;
    info.operand = cmd.operand != nullptr ? cmd.operand : "";
    for (const FlagSpec& flag : cmd.flags) {
      CliFlag f;
      f.name = flag.name;
      f.value_name = flag.value != nullptr ? flag.value : "";
      f.sample = flag.sample != nullptr ? flag.sample : "";
      info.flags.push_back(std::move(f));
    }
    out.push_back(std::move(info));
  }
  return out;
}

std::string cli_usage() { return usage_text(); }

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty()) {
    err << usage_text();
    return 2;
  }
  const std::string& command = args[0];
  if (command == "help" || command == "--help") {
    out << usage_text();
    return 0;
  }
  const CommandSpec* spec = nullptr;
  for (const CommandSpec& candidate : commands()) {
    if (command == candidate.name) {
      spec = &candidate;
      break;
    }
  }
  if (spec == nullptr) {
    err << "unknown command '" << command << "'\n" << usage_text();
    return 2;
  }
  try {
    const std::vector<std::string> tail(args.begin() + 1, args.end());
    const Args cursor(tail, *spec);
    if (command == "run") return cmd_run(cursor, out, err);
    if (command == "serve") return cmd_serve(cursor, out, err);
    if (command == "trace") return cmd_trace(cursor, out, err);
    if (command == "stats") return cmd_stats(cursor, out, err);
    if (command == "simulate") return cmd_simulate(cursor, out, err);
    if (command == "sweep") return cmd_sweep(cursor, out, err);
    if (command == "selfcheck") return cmd_selfcheck(cursor, out, err);
    if (command == "check") return cmd_check(cursor, out, err);
    if (command == "sections") return cmd_sections(cursor, out, err);
    return cmd_slice(cursor, out, err);
  } catch (const UsageError& e) {
    err << "usage error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace mpps::core
