#include "src/core/cli.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "src/common/error.hpp"
#include "src/common/strings.hpp"
#include "src/common/table.hpp"
#include "src/core/distribution.hpp"
#include "src/core/pipeline.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/summary.hpp"
#include "src/obs/timeline.hpp"
#include "src/obs/tracer.hpp"
#include "src/ops5/parser.hpp"
#include "src/rete/interp.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/io.hpp"
#include "src/trace/synth.hpp"

namespace mpps::core {
namespace {

constexpr const char* kUsage = R"(usage: mpps <command> [options]

commands:
  run <file.ops>       run an OPS5 program (--strategy lex|mea,
                       --max-cycles N, --quiet, --watch 0|1|2); with
                       --trace-out t.json / --metrics-out m.csv the match
                       trace is replayed on the simulated MPC (--procs P,
                       --run 0..4) and the timeline/metrics are exported
  trace <file.ops>     record its match trace (-o out.trace, --buckets B)
  stats <file.trace>   print activation statistics and a simulated-run
                       summary: busy skew, message histogram, hottest
                       buckets (--procs P, --run 0..4, --top K)
  simulate <f.trace>   replay on the simulated MPC (--procs P, --run 0..4,
                       --mapping merged|pairs, --assign rr|random|greedy,
                       --ct K, --cs M, --termination none|ack|poll,
                       --trace-out t.json, --metrics-out m.csv)
  sections             write the synthetic Rubik/Tourney/Weaver sections
                       (-o directory, default '.')
  slice <file.trace>   extract consecutive cycles (--from N, --cycles K,
                       -o out.trace) — how the paper built its sections

`--trace-out` writes a Chrome trace_event JSON timeline (load it in
chrome://tracing or https://ui.perfetto.dev); `--metrics-out` writes the
per-cycle busy/idle CSV plus the metrics registry.  docs/OBSERVABILITY.md
documents both formats.
)";

/// Tiny flag cursor over the argument vector.
class Args {
 public:
  explicit Args(const std::vector<std::string>& args) : args_(args) {}

  /// The next positional argument, or empty if none.
  std::string positional() {
    for (std::size_t i = next_; i < args_.size(); ++i) {
      if (!consumed_(i) && args_[i].rfind("--", 0) != 0 && args_[i] != "-o") {
        consumed_flags_.push_back(i);
        return args_[i];
      }
      // Skip a flag and, when it takes a value, its value.
      if (!consumed_(i) && flag_takes_value(args_[i])) ++i;
    }
    return {};
  }

  /// Value of `--name <value>` or `-o <value>`, or `fallback`.
  std::string value(const std::string& name, const std::string& fallback) {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == name) {
        consumed_flags_.push_back(i);
        consumed_flags_.push_back(i + 1);
        return args_[i + 1];
      }
    }
    return fallback;
  }

  bool flag(const std::string& name) {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == name) {
        consumed_flags_.push_back(i);
        return true;
      }
    }
    return false;
  }

  static bool flag_takes_value(const std::string& arg) {
    return arg == "-o" || arg == "--watch" || arg == "--strategy" ||
           arg == "--max-cycles" ||
           arg == "--buckets" || arg == "--procs" || arg == "--run" ||
           arg == "--mapping" || arg == "--assign" || arg == "--ct" ||
           arg == "--cs" || arg == "--termination" || arg == "--seed" ||
           arg == "--from" || arg == "--cycles" || arg == "--trace-out" ||
           arg == "--metrics-out" || arg == "--top";
  }

 private:
  bool consumed_(std::size_t i) const {
    for (auto c : consumed_flags_) {
      if (c == i) return true;
    }
    return false;
  }
  const std::vector<std::string>& args_;
  std::size_t next_ = 0;
  std::vector<std::size_t> consumed_flags_;
};

long parse_long_or(const std::string& s, long fallback) {
  long v = 0;
  return parse_int(s, v) ? v : fallback;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw RuntimeError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The `--trace-out` / `--metrics-out` pair accepted by run and simulate.
struct ObsOutputs {
  std::string trace_path;
  std::string metrics_path;

  [[nodiscard]] bool any() const {
    return !trace_path.empty() || !metrics_path.empty();
  }

  static ObsOutputs from(Args& args) {
    return ObsOutputs{args.value("--trace-out", ""),
                      args.value("--metrics-out", "")};
  }

  /// Exports the attached tracer/registry of a finished simulation.
  void write(const obs::Tracer& tracer, const obs::Registry& registry,
             const sim::SimResult& result, std::ostream& out) const {
    if (!trace_path.empty()) {
      std::ofstream file(trace_path);
      if (!file) throw RuntimeError("cannot write '" + trace_path + "'");
      tracer.write_chrome_json(file);
      out << "wrote trace timeline to " << trace_path << "\n";
    }
    if (!metrics_path.empty()) {
      std::ofstream file(metrics_path);
      if (!file) throw RuntimeError("cannot write '" + metrics_path + "'");
      obs::write_metrics_csv(file, result, &registry);
      out << "wrote metrics to " << metrics_path << "\n";
    }
  }
};

sim::SimConfig parse_basic_sim_config(Args& args, std::uint32_t default_procs,
                                      int default_run) {
  sim::SimConfig config;
  config.match_processors = static_cast<std::uint32_t>(parse_long_or(
      args.value("--procs", std::to_string(default_procs)), default_procs));
  const int run = static_cast<int>(parse_long_or(
      args.value("--run", std::to_string(default_run)), default_run));
  config.costs = run == 0 ? sim::CostModel::zero_overhead()
                          : sim::CostModel::paper_run(run);
  return config;
}

int cmd_run(Args& args, std::ostream& out, std::ostream& err) {
  const std::string path = args.positional();
  if (path.empty()) {
    err << "run: missing program file\n";
    return 2;
  }
  const ObsOutputs obs_out = ObsOutputs::from(args);
  obs::Registry registry;
  rete::InterpreterOptions options;
  options.strategy = args.value("--strategy", "lex") == "mea"
                         ? rete::Strategy::Mea
                         : rete::Strategy::Lex;
  options.max_cycles = static_cast<std::size_t>(
      parse_long_or(args.value("--max-cycles", "100000"), 100000));
  const bool quiet = args.flag("--quiet");
  options.out = quiet ? nullptr : &out;
  options.watch =
      static_cast<int>(parse_long_or(args.value("--watch", "0"), 0));
  if (obs_out.any()) options.engine.metrics = &registry;

  const std::string source = read_file(path);
  rete::Interpreter interp(ops5::parse_program(source), options);
  interp.load_initial_wmes();
  const rete::RunResult result = interp.run();
  out << "outcome: "
      << (result.outcome == rete::RunResult::Outcome::Halted ? "halted"
          : result.outcome == rete::RunResult::Outcome::Quiescent
              ? "quiescent"
              : "cycle-limit")
      << "\ncycles: " << result.cycles << "\nfirings: " << result.firings
      << "\n";
  if (!quiet) {
    for (const auto& firing : interp.firings()) {
      out << "  cycle " << firing.cycle << ": " << firing.production << "\n";
    }
  }
  if (obs_out.any()) {
    // Replay the program's match trace on the simulated machine and export
    // the run's timeline + metrics (rete.* counters above were recorded by
    // the live engine; sim.* come from this replay).
    PipelineOptions pipeline;
    pipeline.interpreter.strategy = options.strategy;
    pipeline.interpreter.max_cycles = options.max_cycles;
    const PipelineResult recorded = record_trace(
        ops5::parse_program(source), path, pipeline);
    sim::SimConfig config = parse_basic_sim_config(args, 8, 1);
    obs::Tracer tracer;
    config.metrics = &registry;
    config.tracer = &tracer;
    const sim::SimResult sim_result =
        sim::simulate(recorded.trace, config,
                      sim::Assignment::round_robin(recorded.trace.num_buckets,
                                                   config.partitions()));
    const SimTime base = sim::baseline_time(recorded.trace);
    out << "simulated " << config.match_processors << " match processors: "
        << "makespan " << sim_result.makespan.micros() << " us, speedup "
        << static_cast<double>(base.nanos()) /
               static_cast<double>(sim_result.makespan.nanos())
        << "\n";
    obs_out.write(tracer, registry, sim_result, out);
  }
  return 0;
}

int cmd_trace(Args& args, std::ostream& out, std::ostream& err) {
  const std::string path = args.positional();
  if (path.empty()) {
    err << "trace: missing program file\n";
    return 2;
  }
  PipelineOptions options;
  options.interpreter.engine.num_buckets = static_cast<std::uint32_t>(
      parse_long_or(args.value("--buckets", "256"), 256));
  const PipelineResult result =
      record_trace_from_source(read_file(path), path, options);
  const std::string out_path = args.value("-o", "");
  if (out_path.empty()) {
    trace::write_trace(out, result.trace);
  } else {
    std::ofstream file(out_path);
    if (!file) throw RuntimeError("cannot write '" + out_path + "'");
    trace::write_trace(file, result.trace);
    out << "wrote " << result.trace.total_activations() << " activations ("
        << result.trace.cycles.size() << " cycles) to " << out_path << "\n";
  }
  return 0;
}

int cmd_stats(Args& args, std::ostream& out, std::ostream& err) {
  const std::string path = args.positional();
  if (path.empty()) {
    err << "stats: missing trace file\n";
    return 2;
  }
  std::ifstream file(path);
  if (!file) throw RuntimeError("cannot open '" + path + "'");
  const trace::Trace t = trace::read_trace(file);
  const trace::TraceStats stats = trace::compute_stats(t);
  TextTable table({"trace", "cycles", "left", "right", "total",
                   "instantiations", "left %"});
  table.row()
      .cell(t.name)
      .cell(static_cast<unsigned long>(t.cycles.size()))
      .cell(static_cast<unsigned long>(stats.left))
      .cell(static_cast<unsigned long>(stats.right))
      .cell(static_cast<unsigned long>(stats.total()))
      .cell(static_cast<unsigned long>(stats.instantiations))
      .cell(stats.left_pct(), 1);
  table.print(out);

  // The paper's uneven-distribution diagnosis, automated: replay the trace
  // on the simulated machine and summarize skew, traffic and hot buckets.
  const sim::SimConfig config = parse_basic_sim_config(args, 16, 1);
  const auto top_k =
      static_cast<std::size_t>(parse_long_or(args.value("--top", "8"), 8));
  const sim::SimResult result = sim::simulate(
      t, config,
      sim::Assignment::round_robin(t.num_buckets, config.partitions()));
  out << "\nsimulated run summary (" << config.match_processors
      << " match processors):\n";
  const obs::RunSummary summary = obs::summarize_run(t, result, top_k);
  obs::print_run_summary(out, summary);
  return 0;
}

int cmd_simulate(Args& args, std::ostream& out, std::ostream& err) {
  const std::string path = args.positional();
  if (path.empty()) {
    err << "simulate: missing trace file\n";
    return 2;
  }
  std::ifstream file(path);
  if (!file) throw RuntimeError("cannot open '" + path + "'");
  const trace::Trace t = trace::read_trace(file);

  sim::SimConfig config;
  config.match_processors = static_cast<std::uint32_t>(
      parse_long_or(args.value("--procs", "8"), 8));
  const int run = static_cast<int>(parse_long_or(args.value("--run", "1"), 1));
  config.costs = run == 0 ? sim::CostModel::zero_overhead()
                          : sim::CostModel::paper_run(run);
  if (args.value("--mapping", "merged") == "pairs") {
    config.mapping = sim::MappingMode::ProcessorPairs;
  }
  config.constant_test_processors =
      static_cast<std::uint32_t>(parse_long_or(args.value("--ct", "0"), 0));
  config.conflict_set_processors =
      static_cast<std::uint32_t>(parse_long_or(args.value("--cs", "0"), 0));
  const std::string termination = args.value("--termination", "none");
  if (termination == "ack") {
    config.termination = sim::TerminationModel::AckCounting;
  } else if (termination == "poll") {
    config.termination = sim::TerminationModel::BarrierPoll;
  }

  const std::string assign = args.value("--assign", "rr");
  sim::Assignment assignment =
      assign == "random"
          ? sim::Assignment::random(
                t.num_buckets, config.partitions(),
                static_cast<std::uint64_t>(
                    parse_long_or(args.value("--seed", "1"), 1)))
      : assign == "greedy"
          ? greedy_assignment(t, config.partitions(), config.costs)
          : sim::Assignment::round_robin(t.num_buckets, config.partitions());

  const ObsOutputs obs_out = ObsOutputs::from(args);
  obs::Registry registry;
  obs::Tracer tracer;
  if (obs_out.any()) {
    config.metrics = &registry;
    config.tracer = &tracer;
  }

  const sim::SimResult result = sim::simulate(t, config, assignment);
  const SimTime base = sim::baseline_time(t);
  TextTable table({"makespan (us)", "speedup", "messages", "local",
                   "network idle %", "avg proc util %"});
  table.row()
      .cell(result.makespan.micros(), 1)
      .cell(static_cast<double>(base.nanos()) /
                static_cast<double>(result.makespan.nanos()),
            2)
      .cell(static_cast<unsigned long>(result.messages))
      .cell(static_cast<unsigned long>(result.local_deliveries))
      .cell(100.0 * (1.0 - result.network_utilization()), 1)
      .cell(100.0 * result.avg_processor_utilization(), 1);
  table.print(out);
  obs_out.write(tracer, registry, result, out);
  return 0;
}

int cmd_slice(Args& args, std::ostream& out, std::ostream& err) {
  const std::string path = args.positional();
  if (path.empty()) {
    err << "slice: missing trace file\n";
    return 2;
  }
  std::ifstream file(path);
  if (!file) throw RuntimeError("cannot open '" + path + "'");
  const trace::Trace t = trace::read_trace(file);
  const auto first = static_cast<std::size_t>(
      parse_long_or(args.value("--from", "0"), 0));
  const auto count = static_cast<std::size_t>(
      parse_long_or(args.value("--cycles", "4"), 4));
  const trace::Trace section = trace::slice(t, first, count);
  const std::string out_path = args.value("-o", "");
  if (out_path.empty()) {
    trace::write_trace(out, section);
  } else {
    std::ofstream sink(out_path);
    if (!sink) throw RuntimeError("cannot write '" + out_path + "'");
    trace::write_trace(sink, section);
    out << "wrote " << section.total_activations() << " activations ("
        << count << " cycles) to " << out_path << "\n";
  }
  return 0;
}

int cmd_sections(Args& args, std::ostream& out, std::ostream&) {
  const std::string dir = args.value("-o", ".");
  for (const auto& [name, section] :
       {std::pair<const char*, trace::Trace>{"rubik",
                                             trace::make_rubik_section()},
        {"tourney", trace::make_tourney_section()},
        {"weaver", trace::make_weaver_section()}}) {
    const std::string path = dir + "/" + name + ".trace";
    std::ofstream file(path);
    if (!file) throw RuntimeError("cannot write '" + path + "'");
    trace::write_trace(file, section);
    out << "wrote " << path << " (" << section.total_activations()
        << " activations)\n";
  }
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty()) {
    err << kUsage;
    return 2;
  }
  const std::vector<std::string> tail(args.begin() + 1, args.end());
  Args cursor(tail);
  try {
    const std::string& command = args[0];
    if (command == "run") return cmd_run(cursor, out, err);
    if (command == "trace") return cmd_trace(cursor, out, err);
    if (command == "stats") return cmd_stats(cursor, out, err);
    if (command == "simulate") return cmd_simulate(cursor, out, err);
    if (command == "sections") return cmd_sections(cursor, out, err);
    if (command == "slice") return cmd_slice(cursor, out, err);
    if (command == "help" || command == "--help") {
      out << kUsage;
      return 0;
    }
    err << "unknown command '" << command << "'\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace mpps::core
