// The Section 5.2.2 probabilistic model of active-bucket distribution:
// only a fraction of buckets are active, each active bucket processes one
// activation, and buckets are distributed to processors.  The model backs
// the paper's three conclusions:
//   1. P(completely even) and P(totally uneven) are both very low (< 1%).
//   2. A larger active fraction makes even distributions more likely
//      (right buckets, mostly active, distribute well).
//   3. More processors make uneven distributions more likely, so the
//      achievable speedup scales sublinearly.
#pragma once

#include <cstdint>

namespace mpps::core {

struct ProbModelResult {
  double p_even = 0.0;            // max load == ceil(active / procs)
  double p_totally_uneven = 0.0;  // all activations on one processor
  double expected_max_load = 0.0;
  /// active / E[max load]: the speedup the distribution permits.
  double expected_speedup = 0.0;
};

enum class BucketPlacement : std::uint8_t {
  /// Each bucket assigned to a uniformly random processor (the paper's
  /// "random distribution" alternative).
  IndependentUniform,
  /// Buckets dealt round-robin, the active subset drawn at random (the
  /// paper's default placement with random activity).
  FixedPartition,
};

/// Monte-Carlo evaluation of the model: `buckets` total, an active subset
/// of size round(buckets * active_fraction), `procs` processors.
ProbModelResult probmodel_monte_carlo(std::uint32_t buckets,
                                      double active_fraction,
                                      std::uint32_t procs,
                                      BucketPlacement placement,
                                      std::uint32_t trials,
                                      std::uint64_t seed);

/// Exact evaluation for IndependentUniform placement (multinomial max-load
/// distribution).  Feasible for active <= ~200.
ProbModelResult probmodel_exact(std::uint32_t active, std::uint32_t procs);

}  // namespace mpps::core
