#include "src/core/pipeline.hpp"

#include "src/ops5/parser.hpp"
#include "src/trace/collector.hpp"

namespace mpps::core {

PipelineResult record_trace(const ops5::Program& program, std::string name,
                            const PipelineOptions& options) {
  rete::Interpreter interp(program, options.interpreter);
  trace::Collector collector(options.interpreter.engine.num_buckets);
  interp.match_engine().set_listener(&collector);
  interp.load_initial_wmes();

  PipelineResult result;
  const std::size_t limit = options.max_trace_cycles == 0
                                ? options.interpreter.max_cycles
                                : options.max_trace_cycles;
  bool running = true;
  while (running && interp.cycle() < limit) {
    collector.begin_cycle();
    running = interp.step();
  }
  result.run.outcome = interp.halted() ? rete::RunResult::Outcome::Halted
                       : running ? rete::RunResult::Outcome::CycleLimit
                                 : rete::RunResult::Outcome::Quiescent;
  result.run.cycles = interp.cycle();
  result.run.firings = interp.firings().size();
  result.firings = interp.firings().size();
  result.trace = collector.take(std::move(name));
  trace::validate(result.trace);
  return result;
}

PipelineResult record_trace_from_source(std::string_view source,
                                        std::string name,
                                        const PipelineOptions& options) {
  return record_trace(ops5::parse_program(source), std::move(name), options);
}

std::vector<SpeedupPoint> speedup_curve(const trace::Trace& trace,
                                        const std::vector<std::uint32_t>& procs,
                                        const std::vector<int>& runs) {
  std::vector<SpeedupPoint> out;
  for (int run : runs) {
    for (std::uint32_t p : procs) {
      sim::SimConfig config;
      config.match_processors = p;
      config.costs =
          run == 0 ? sim::CostModel::zero_overhead() : sim::CostModel::paper_run(run);
      SpeedupPoint point;
      point.procs = p;
      point.run = run;
      point.speedup = sim::speedup(
          trace, config, sim::Assignment::round_robin(trace.num_buckets, p));
      out.push_back(point);
    }
  }
  return out;
}

}  // namespace mpps::core
