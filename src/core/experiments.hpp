// Shared harness for the paper-reproduction benchmarks: the three
// characteristic sections and the standard sweeps.
#pragma once

#include <string>
#include <vector>

#include "src/core/sweep.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/record.hpp"

namespace mpps::core {

struct Section {
  std::string label;
  trace::Trace trace;
};

/// Rubik, Tourney, Weaver — in the paper's presentation order.
std::vector<Section> standard_sections(std::uint32_t num_buckets = 256,
                                       std::uint64_t seed = 1);

/// The processor counts swept in the figures.
std::vector<std::uint32_t> standard_proc_counts();

/// Round-robin speedup at `procs` with zero latency & overhead (Fig 5-1).
double zero_overhead_speedup(const trace::Trace& trace, std::uint32_t procs);

/// Round-robin speedup under Table 5-1 `run` (1..4), 0.5 us latency.
double run_speedup(const trace::Trace& trace, int run, std::uint32_t procs);

/// The Figure 5-2 grid for one section: round-robin scenarios over
/// (procs × runs), run-major per processor count, labelled
/// "<section>/p<procs>/r<run>".  `run` 0 means zero overheads.  The
/// section (its trace) must outlive the returned scenarios.
std::vector<SweepScenario> overhead_grid(const Section& section,
                                         const std::vector<std::uint32_t>& procs,
                                         const std::vector<int>& runs);

/// Runs `overhead_grid` for every section on `jobs` workers; outcomes are
/// section-major in grid order.
std::vector<SweepOutcome> overhead_sweep(const std::vector<Section>& sections,
                                         const std::vector<std::uint32_t>& procs,
                                         const std::vector<int>& runs,
                                         unsigned jobs = 0);

}  // namespace mpps::core
