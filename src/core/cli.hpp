// The `mpps` command-line tool's engine, kept in the library so it can be
// unit tested.
//
// The subcommand surface is declared in one flag table inside cli.cpp;
// the usage text is generated from that table (so help cannot drift from
// what is accepted), unknown flags are usage errors (exit 2), and
// `cli_commands()` exposes the table so tests can assert that every
// documented flag is actually parsed.
//
// Shared conventions across subcommands (see `mpps help`):
//   --procs P[,P...]   processor counts; a comma list fans out in parallel
//   --jobs N           worker threads for fan-out (0/absent = auto)
//   --trace-out FILE   Chrome trace_event timeline of the simulated run(s)
//   --metrics-out FILE metrics-registry CSV of the run(s)
//   --json             versioned machine-readable output (schema_version 2)
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mpps::core {

/// One documented flag of a subcommand (from the cli.cpp flag table).
struct CliFlag {
  std::string name;        // e.g. "--procs" or "-o"
  std::string value_name;  // metavar; empty for boolean flags
  std::string sample;      // a valid example value (tests); empty if boolean
};

/// One subcommand and its accepted flags.
struct CliCommand {
  std::string name;     // e.g. "simulate"
  std::string operand;  // e.g. "<file.trace>"; empty if none
  std::vector<CliFlag> flags;
};

/// The full declared CLI surface, in help order.
std::vector<CliCommand> cli_commands();

/// The generated usage text (what `mpps help` prints).
std::string cli_usage();

/// Runs one CLI invocation.  `args` excludes the program name.  Returns
/// the process exit code; all output goes to the provided streams.
/// Exit codes: 0 success, 1 runtime failure, 2 usage error.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace mpps::core
