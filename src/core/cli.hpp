// The `mpps` command-line tool's engine, kept in the library so it can be
// unit tested.  Subcommands:
//
//   mpps run <file.ops> [--strategy lex|mea] [--max-cycles N] [--quiet]
//       Run an OPS5 program to halt/quiescence; print firings.
//   mpps trace <file.ops> [-o <file.trace>] [--buckets B]
//       Record the match-phase activation trace of a program.
//   mpps stats <file.trace>
//       Print Table 5-2-style statistics for a trace.
//   mpps simulate <file.trace> [--procs P] [--run 0..4] [--mapping merged|pairs]
//       [--assign rr|random|greedy] [--ct K] [--cs M]
//       [--termination none|ack|poll]
//       Replay a trace on the simulated message-passing machine.
//   mpps sections [-o <dir>]
//       Write the three synthetic paper sections as trace files.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mpps::core {

/// Runs one CLI invocation.  `args` excludes the program name.  Returns
/// the process exit code; all output goes to the provided streams.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace mpps::core
