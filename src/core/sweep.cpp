#include "src/core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "src/common/error.hpp"
#include "src/sim/invariants.hpp"

namespace mpps::core {

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {
  jobs_ = options.jobs != 0
              ? options.jobs
              : std::max(1u, std::thread::hardware_concurrency());
}

std::vector<SweepOutcome> SweepRunner::run(
    const std::vector<SweepScenario>& scenarios) const {
  // Warm the shared baseline cache serially before fanning out: each
  // distinct trace is simulated exactly once and the workers only read.
  for (const SweepScenario& scenario : scenarios) {
    if (scenario.trace == nullptr) {
      throw RuntimeError("sweep scenario '" + scenario.label +
                         "' has no trace");
    }
    const trace::Trace& base =
        scenario.baseline != nullptr ? *scenario.baseline : *scenario.trace;
    sim::BaselineCache::shared().baseline(base);
  }

  // One slot per scenario: workers write only their own slot, so the
  // collected results are ordered by scenario no matter which worker ran
  // what.
  struct Slot {
    SweepOutcome outcome;
    obs::Registry registry;
    obs::Tracer tracer;
  };
  std::vector<Slot> slots(scenarios.size());
  const bool collect_metrics = options_.metrics != nullptr;
  const bool collect_timeline = options_.tracer != nullptr;

  std::atomic<std::size_t> next{0};
  std::mutex failure_mu;
  std::exception_ptr failure;
  std::size_t failure_index = scenarios.size();

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= scenarios.size()) return;
      try {
        const SweepScenario& scenario = scenarios[i];
        Slot& slot = slots[i];
        sim::SimConfig config = scenario.config;
        config.metrics = collect_metrics ? &slot.registry : nullptr;
        config.tracer = collect_timeline ? &slot.tracer : nullptr;
        slot.outcome.label = scenario.label;
        slot.outcome.result =
            sim::simulate(*scenario.trace, config, scenario.assignment);
        if (options_.check_invariants) {
          const sim::InvariantReport laws = sim::check_run_invariants(
              *scenario.trace, scenario.config, slot.outcome.result,
              collect_metrics ? &slot.registry : nullptr);
          if (!laws.ok()) {
            throw RuntimeError("sweep scenario '" + scenario.label +
                               "' violates simulator invariants:\n" +
                               laws.summary());
          }
        }
        const trace::Trace& base = scenario.baseline != nullptr
                                       ? *scenario.baseline
                                       : *scenario.trace;
        slot.outcome.baseline = sim::BaselineCache::shared().baseline(base);
        const SimTime t = slot.outcome.result.makespan;
        slot.outcome.speedup =
            t.nanos() == 0
                ? 0.0
                : static_cast<double>(slot.outcome.baseline.nanos()) /
                      static_cast<double>(t.nanos());
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mu);
        if (i < failure_index) {
          failure_index = i;
          failure = std::current_exception();
        }
      }
    }
  };

  const auto want = static_cast<std::size_t>(jobs_);
  const std::size_t n = std::min(want, std::max<std::size_t>(
                                           std::size_t{1}, scenarios.size()));
  if (n <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (std::size_t t = 0; t < n; ++t) pool.emplace_back(worker);
    for (std::thread& thread : pool) thread.join();
  }
  if (failure) std::rethrow_exception(failure);

  std::vector<SweepOutcome> out;
  out.reserve(slots.size());
  for (Slot& slot : slots) {
    if (collect_metrics) options_.metrics->merge_from(slot.registry);
    if (collect_timeline) options_.tracer->merge_from(slot.tracer);
    out.push_back(std::move(slot.outcome));
  }

  // Cross-run laws (event conservation across the cost grid, token
  // conservation across processor counts, overhead monotonicity) over
  // every group of scenarios replaying the same trace with the same
  // assignment — the monotonicity law is only meaningful between runs
  // sharing one assignment (see sim::ObservedRun).  Runs serially after
  // the join, in scenario order, so the law counters merged into
  // `metrics` stay bit-identical for every jobs value.
  if (options_.check_invariants) {
    std::vector<bool> grouped(scenarios.size(), false);
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      if (grouped[i]) continue;
      std::vector<sim::ObservedRun> group;
      std::vector<std::size_t> members;
      for (std::size_t j = i; j < scenarios.size(); ++j) {
        if (grouped[j] || scenarios[j].trace != scenarios[i].trace ||
            !(scenarios[j].assignment == scenarios[i].assignment)) {
          continue;
        }
        grouped[j] = true;
        group.push_back({scenarios[j].config, &out[j].result});
        members.push_back(j);
      }
      if (group.size() < 2) continue;
      const sim::InvariantReport laws = sim::check_cross_run_invariants(
          *scenarios[i].trace, group, options_.metrics);
      if (!laws.ok()) {
        std::string labels;
        for (const std::size_t j : members) {
          labels += (labels.empty() ? "" : ", ") + scenarios[j].label;
        }
        throw RuntimeError("sweep scenarios [" + labels +
                           "] violate cross-run simulator invariants:\n" +
                           laws.summary());
      }
    }
  }
  return out;
}

std::vector<SweepOutcome> run_sweep(const std::vector<SweepScenario>& scenarios,
                                    unsigned jobs) {
  SweepOptions options;
  options.jobs = jobs;
  return SweepRunner(options).run(scenarios);
}

}  // namespace mpps::core
