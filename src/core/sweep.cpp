#include "src/core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "src/common/error.hpp"
#include "src/sim/invariants.hpp"

namespace mpps::core {

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {
  jobs_ = options.jobs != 0
              ? options.jobs
              : std::max(1u, std::thread::hardware_concurrency());
}

std::vector<SweepOutcome> SweepRunner::run(
    const std::vector<SweepScenario>& scenarios) const {
  // Warm the shared baseline cache serially before fanning out: each
  // distinct trace is simulated exactly once and the workers only read.
  for (const SweepScenario& scenario : scenarios) {
    if (scenario.trace == nullptr) {
      throw RuntimeError("sweep scenario '" + scenario.label +
                         "' has no trace");
    }
    const trace::Trace& base =
        scenario.baseline != nullptr ? *scenario.baseline : *scenario.trace;
    sim::BaselineCache::shared().baseline(base);
  }

  // One slot per scenario: workers write only their own slot, so the
  // collected results are ordered by scenario no matter which worker ran
  // what.
  struct Slot {
    SweepOutcome outcome;
    obs::Registry registry;
    obs::Tracer tracer;
  };
  std::vector<Slot> slots(scenarios.size());
  const bool collect_metrics = options_.metrics != nullptr;
  const bool collect_timeline = options_.tracer != nullptr;

  std::atomic<std::size_t> next{0};
  std::mutex failure_mu;
  std::exception_ptr failure;
  std::size_t failure_index = scenarios.size();

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= scenarios.size()) return;
      try {
        const SweepScenario& scenario = scenarios[i];
        Slot& slot = slots[i];
        sim::SimConfig config = scenario.config;
        config.metrics = collect_metrics ? &slot.registry : nullptr;
        config.tracer = collect_timeline ? &slot.tracer : nullptr;
        slot.outcome.label = scenario.label;
        slot.outcome.result =
            sim::simulate(*scenario.trace, config, scenario.assignment);
        if (options_.check_invariants) {
          const sim::InvariantReport laws = sim::check_run_invariants(
              *scenario.trace, scenario.config, slot.outcome.result,
              collect_metrics ? &slot.registry : nullptr);
          if (!laws.ok()) {
            throw RuntimeError("sweep scenario '" + scenario.label +
                               "' violates simulator invariants:\n" +
                               laws.summary());
          }
        }
        const trace::Trace& base = scenario.baseline != nullptr
                                       ? *scenario.baseline
                                       : *scenario.trace;
        slot.outcome.baseline = sim::BaselineCache::shared().baseline(base);
        const SimTime t = slot.outcome.result.makespan;
        slot.outcome.speedup =
            t.nanos() == 0
                ? 0.0
                : static_cast<double>(slot.outcome.baseline.nanos()) /
                      static_cast<double>(t.nanos());
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mu);
        if (i < failure_index) {
          failure_index = i;
          failure = std::current_exception();
        }
      }
    }
  };

  const auto want = static_cast<std::size_t>(jobs_);
  const std::size_t n = std::min(want, std::max<std::size_t>(
                                           std::size_t{1}, scenarios.size()));
  if (n <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (std::size_t t = 0; t < n; ++t) pool.emplace_back(worker);
    for (std::thread& thread : pool) thread.join();
  }
  if (failure) std::rethrow_exception(failure);

  std::vector<SweepOutcome> out;
  out.reserve(slots.size());
  for (Slot& slot : slots) {
    if (collect_metrics) options_.metrics->merge_from(slot.registry);
    if (collect_timeline) options_.tracer->merge_from(slot.tracer);
    out.push_back(std::move(slot.outcome));
  }
  return out;
}

std::vector<SweepOutcome> run_sweep(const std::vector<SweepScenario>& scenarios,
                                    unsigned jobs) {
  SweepOptions options;
  options.jobs = jobs;
  return SweepRunner(options).run(scenarios);
}

}  // namespace mpps::core
