// Bucket-distribution strategies beyond round-robin/random: the paper's
// offline greedy algorithm (Section 5.2.2), which is given the per-bucket
// activity of each cycle — information a real runtime would not have — and
// produces one assignment per cycle, approximating the NP-complete optimal
// multiprocessor-scheduling solution.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/assignment.hpp"
#include "src/sim/costs.hpp"
#include "src/trace/record.hpp"

namespace mpps::core {

/// Per-bucket processing cost (in nanoseconds of simulated work) for one
/// cycle of the trace, under the given cost model: token add/delete plus
/// successor generation, attributed to the bucket where the activation runs.
std::vector<std::uint64_t> bucket_costs(const trace::Trace& trace,
                                        std::size_t cycle,
                                        const sim::CostModel& costs);

/// Offline greedy (LPT) assignment: per cycle, sorts buckets by descending
/// cost and assigns each to the least-loaded processor.  Zero-cost buckets
/// are dealt round-robin.  Compatibility wrapper over
/// sim::Assignment::greedy, where the algorithm now lives (property-tested
/// in tests/sim_assignment_property_test.cpp).
sim::Assignment greedy_assignment(const trace::Trace& trace,
                                  std::uint32_t num_procs,
                                  const sim::CostModel& costs);

/// The load-variance of an assignment on one cycle (diagnostics): the ratio
/// max-processor-load / mean-processor-load, >= 1, 1 == perfectly even.
double load_imbalance(const trace::Trace& trace, std::size_t cycle,
                      const sim::Assignment& assignment,
                      const sim::CostModel& costs);

/// Resident-token counts per bucket at each cycle boundary, reconstructed
/// from the trace's +/- tags (an activation with tag + stores a token in
/// its bucket; tag - removes one).  Index: [cycle][bucket] = tokens
/// resident after that cycle completes.
std::vector<std::vector<std::uint64_t>> resident_tokens_per_cycle(
    const trace::Trace& trace);

/// The cost of DYNAMIC load balancing the paper rules out ("moving
/// hash-buckets around to change the token distribution is too costly"):
/// when a per-cycle assignment moves a bucket between processors at a
/// cycle boundary, every token resident in that bucket must be shipped.
/// Returns the total transfer time across all boundaries, charging
/// `per_token_move` per resident token of each moved bucket.
SimTime migration_overhead(const trace::Trace& trace,
                           const sim::Assignment& assignment,
                           SimTime per_token_move);

/// Section 5.2.1's third level of granularity: cycles with fewer than
/// `small_cycle_threshold` activations do not possess much parallelism, so
/// ALL their buckets are assigned to a single processor (rotating per
/// cycle) and no messages are exchanged; larger cycles keep the `base`
/// assignment.  "Though the different granularities are decided a priori,
/// the mapping would seem to converge to the variable granularities
/// approach promoted in [15]."
sim::Assignment coalesce_small_cycles(const trace::Trace& trace,
                                      const sim::Assignment& base,
                                      std::uint32_t num_procs,
                                      std::size_t small_cycle_threshold);

}  // namespace mpps::core
