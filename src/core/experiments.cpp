#include "src/core/experiments.hpp"

#include <iterator>

#include "src/trace/synth.hpp"

namespace mpps::core {

std::vector<Section> standard_sections(std::uint32_t num_buckets,
                                       std::uint64_t seed) {
  std::vector<Section> out;
  out.push_back({"Rubik", trace::make_rubik_section(num_buckets, seed)});
  out.push_back({"Tourney", trace::make_tourney_section(num_buckets, seed)});
  out.push_back({"Weaver", trace::make_weaver_section(num_buckets, seed)});
  return out;
}

std::vector<std::uint32_t> standard_proc_counts() {
  return {1, 2, 4, 8, 16, 32, 64};
}

double zero_overhead_speedup(const trace::Trace& trace, std::uint32_t procs) {
  sim::SimConfig config;
  config.match_processors = procs;
  config.costs = sim::CostModel::zero_overhead();
  return sim::speedup(trace, config,
                      sim::Assignment::round_robin(trace.num_buckets, procs));
}

double run_speedup(const trace::Trace& trace, int run, std::uint32_t procs) {
  sim::SimConfig config;
  config.match_processors = procs;
  config.costs = sim::CostModel::paper_run(run);
  return sim::speedup(trace, config,
                      sim::Assignment::round_robin(trace.num_buckets, procs));
}

std::vector<SweepScenario> overhead_grid(
    const Section& section, const std::vector<std::uint32_t>& procs,
    const std::vector<int>& runs) {
  std::vector<SweepScenario> grid;
  grid.reserve(procs.size() * runs.size());
  for (std::uint32_t p : procs) {
    for (int run : runs) {
      SweepScenario scenario;
      scenario.label = section.label + "/p" + std::to_string(p) + "/r" +
                       std::to_string(run);
      scenario.trace = &section.trace;
      scenario.config.match_processors = p;
      scenario.config.costs = run == 0 ? sim::CostModel::zero_overhead()
                                       : sim::CostModel::paper_run(run);
      scenario.assignment =
          sim::Assignment::round_robin(section.trace.num_buckets, p);
      grid.push_back(std::move(scenario));
    }
  }
  return grid;
}

std::vector<SweepOutcome> overhead_sweep(const std::vector<Section>& sections,
                                         const std::vector<std::uint32_t>& procs,
                                         const std::vector<int>& runs,
                                         unsigned jobs) {
  std::vector<SweepScenario> scenarios;
  for (const Section& section : sections) {
    auto grid = overhead_grid(section, procs, runs);
    scenarios.insert(scenarios.end(), std::make_move_iterator(grid.begin()),
                     std::make_move_iterator(grid.end()));
  }
  return run_sweep(scenarios, jobs);
}

}  // namespace mpps::core
