#include "src/core/experiments.hpp"

#include "src/trace/synth.hpp"

namespace mpps::core {

std::vector<Section> standard_sections(std::uint32_t num_buckets,
                                       std::uint64_t seed) {
  std::vector<Section> out;
  out.push_back({"Rubik", trace::make_rubik_section(num_buckets, seed)});
  out.push_back({"Tourney", trace::make_tourney_section(num_buckets, seed)});
  out.push_back({"Weaver", trace::make_weaver_section(num_buckets, seed)});
  return out;
}

std::vector<std::uint32_t> standard_proc_counts() {
  return {1, 2, 4, 8, 16, 32, 64};
}

double zero_overhead_speedup(const trace::Trace& trace, std::uint32_t procs) {
  sim::SimConfig config;
  config.match_processors = procs;
  config.costs = sim::CostModel::zero_overhead();
  return sim::speedup(trace, config,
                      sim::Assignment::round_robin(trace.num_buckets, procs));
}

double run_speedup(const trace::Trace& trace, int run, std::uint32_t procs) {
  sim::SimConfig config;
  config.match_processors = procs;
  config.costs = sim::CostModel::paper_run(run);
  return sim::speedup(trace, config,
                      sim::Assignment::round_robin(trace.num_buckets, procs));
}

}  // namespace mpps::core
