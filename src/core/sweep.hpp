// The multi-threaded sweep engine: fans independent (trace, SimConfig,
// Assignment) scenarios out across a pool of worker threads.  The paper's
// whole methodology is parameter sweeps over a fixed trace (Figures
// 5-1…5-6 replay the same sections under dozens of configurations), and
// every scenario is independent, so the sweep parallelizes perfectly.
//
// Determinism guarantee: results are bit-identical for every jobs value.
// Each scenario's simulation is already deterministic (the simulator's
// event heap orders ties by (time, seq)), each scenario records into
// private observability sinks, and the runner collects outcomes into
// slots indexed by scenario — merging the per-scenario sinks in scenario
// order at join — so nothing observable depends on thread scheduling.
// Asserted in tests/core_sweep_test.cpp.
//
// The serial zero-overhead baseline of each distinct trace is computed
// once up front through sim::BaselineCache::shared() and shared by every
// scenario over that trace (previously `sim::speedup` re-simulated it per
// configuration).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/obs/tracer.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/record.hpp"

namespace mpps::core {

/// One independent replay.  The trace pointers are not owned and must
/// outlive the sweep.
struct SweepScenario {
  std::string label;
  const trace::Trace* trace = nullptr;
  /// Trace whose serial zero-overhead time is the speedup denominator;
  /// null ⇒ `trace` itself.  Transformed traces are compared against the
  /// ORIGINAL section's baseline (they do the same semantic work).
  const trace::Trace* baseline = nullptr;
  /// `metrics`/`tracer` in here are ignored: the runner attaches its own
  /// per-scenario sinks (see SweepOptions).
  sim::SimConfig config;
  sim::Assignment assignment;
};

/// Outcome i of SweepRunner::run corresponds to scenario i.
struct SweepOutcome {
  std::string label;
  sim::SimResult result;
  SimTime baseline{};
  double speedup = 0.0;
};

struct SweepOptions {
  /// Worker threads; 0 ⇒ std::thread::hardware_concurrency() (min 1).
  unsigned jobs = 0;
  /// Optional merged sinks.  When set, every scenario records into a
  /// private Registry/Tracer and the runner folds them into these in
  /// scenario order at join — byte-identical output for every jobs value.
  obs::Registry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  /// Run sim::check_run_invariants on every outcome, and
  /// sim::check_cross_run_invariants over every group of scenarios that
  /// replay the same trace with the same assignment (the metamorphic
  /// law layer of docs/TESTING.md — including the event-conservation
  /// law pinning SimResult::events constant across the cost grid).  A
  /// violated law fails the sweep like any other error; per-run law
  /// counters land in the per-scenario registries and the cross-run
  /// pass runs serially after the join, so merged metrics stay
  /// identical for every jobs value.
  bool check_invariants = false;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// The resolved worker count.
  [[nodiscard]] unsigned jobs() const { return jobs_; }

  /// Runs every scenario and returns the outcomes in scenario order.
  /// Scenario failures (e.g. an assignment/partition mismatch) are
  /// rethrown after all workers join; when several scenarios fail, the
  /// lowest-indexed failure wins — again independent of scheduling.
  std::vector<SweepOutcome> run(
      const std::vector<SweepScenario>& scenarios) const;

 private:
  SweepOptions options_;
  unsigned jobs_ = 1;
};

/// One-call form: `run_sweep(scenarios, jobs)`.
std::vector<SweepOutcome> run_sweep(const std::vector<SweepScenario>& scenarios,
                                    unsigned jobs = 0);

}  // namespace mpps::core
