#include "src/common/table.hpp"

#include <algorithm>

#include "src/common/strings.hpp"

namespace mpps {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::cell(std::string_view text) {
  rows_.back().push_back(Cell{std::string(text), false});
  return *this;
}

TextTable& TextTable::cell(double v, int prec) {
  rows_.back().push_back(Cell{format_fixed(v, prec), true});
  return *this;
}

TextTable& TextTable::cell(long v) {
  rows_.back().push_back(Cell{std::to_string(v), true});
  return *this;
}

TextTable& TextTable::cell(unsigned long v) {
  rows_.back().push_back(Cell{std::to_string(v), true});
  return *this;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].text.size());
    }
  }
  auto rule = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](std::size_t c, const std::string& text, bool right) {
    std::size_t pad = widths[c] - std::min(widths[c], text.size());
    os << ' ';
    if (right) os << std::string(pad, ' ') << text;
    else os << text << std::string(pad, ' ');
    os << " |";
  };
  rule();
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) emit(c, headers_[c], false);
  os << '\n';
  rule();
  for (const auto& r : rows_) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c < r.size()) emit(c, r[c].text, r[c].numeric);
      else emit(c, "", false);
    }
    os << '\n';
  }
  rule();
}

void TextTable::print_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << headers_[c];
  }
  os << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << r[c].text;
    }
    os << '\n';
  }
}

void print_banner(std::ostream& os, std::string_view title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace mpps
