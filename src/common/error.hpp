// Error types.  Parsing and IO report problems via exceptions carrying a
// source location; everything else uses assertions on internal invariants.
#pragma once

#include <stdexcept>
#include <string>

namespace mpps {

/// Error raised while parsing OPS5 source text.  `line`/`column` are
/// 1-based positions in the input.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, int line, int column)
      : std::runtime_error("parse error at " + std::to_string(line) + ":" +
                           std::to_string(column) + ": " + message),
        line_(line),
        column_(column) {}

  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// Error raised while reading a malformed trace file.
class TraceFormatError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Error raised by the interpreter for ill-formed RHS actions
/// (e.g. `remove 5` in a production with three condition elements).
class RuntimeError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Invalid caller-supplied configuration: a bad CLI flag value or an
/// option-builder setter given an out-of-range argument.  The message
/// names the offending field.  Derives from RuntimeError so call sites
/// that only distinguish "configuration vs. IO" keep working; the CLI
/// maps it to exit code 2 (usage) instead of 1 (runtime failure).
class UsageError : public RuntimeError {
  using RuntimeError::RuntimeError;
};

}  // namespace mpps
