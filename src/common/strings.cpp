#include "src/common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace mpps {

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool parse_int(std::string_view s, long& out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

bool parse_double(std::string_view s, double& out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

std::string format_fixed(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

}  // namespace mpps
