// Simulated time.  The paper's cost model is in microseconds with one
// half-microsecond quantity (the 0.5 us wire latency), so we count integer
// NANOseconds: all arithmetic is exact and simulator runs are bit-for-bit
// deterministic.
#pragma once

#include <compare>
#include <cstdint>

namespace mpps {

/// A duration or point in simulated time, in integer nanoseconds.
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime ns(std::int64_t n) { return SimTime{n}; }
  static constexpr SimTime us(std::int64_t u) { return SimTime{u * 1000}; }
  /// Half-microsecond resolution constructor (e.g. `half_us(1)` == 0.5 us).
  static constexpr SimTime half_us(std::int64_t h) { return SimTime{h * 500}; }

  [[nodiscard]] constexpr std::int64_t nanos() const { return ns_; }
  [[nodiscard]] constexpr double micros() const {
    return static_cast<double>(ns_) / 1000.0;
  }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.ns_ + b.ns_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.ns_ - b.ns_};
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime{a.ns_ * k};
  }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) {
    return a * k;
  }
  constexpr SimTime& operator+=(SimTime b) {
    ns_ += b.ns_;
    return *this;
  }
  friend constexpr bool operator==(SimTime, SimTime) = default;
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

 private:
  constexpr explicit SimTime(std::int64_t n) : ns_(n) {}
  std::int64_t ns_ = 0;
};

constexpr SimTime kZeroTime = SimTime::ns(0);

}  // namespace mpps
