// ASCII table printer used by the benchmark harnesses to emit the paper's
// tables and figure series in a uniform, diff-friendly format.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mpps {

/// Column-aligned text table.  Numeric cells are right-aligned, text cells
/// left-aligned.  `print` writes a boxed table; `print_csv` a CSV form.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Starts a new row.  Cells are appended with `cell`.
  TextTable& row();
  TextTable& cell(std::string_view text);
  TextTable& cell(double v, int prec = 2);
  TextTable& cell(long v);
  TextTable& cell(unsigned long v);
  TextTable& cell(int v) { return cell(static_cast<long>(v)); }
  TextTable& cell(unsigned v) { return cell(static_cast<unsigned long>(v)); }

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

 private:
  struct Cell {
    std::string text;
    bool numeric = false;
  };
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
};

/// Prints a one-line section banner (used between experiment blocks).
void print_banner(std::ostream& os, std::string_view title);

}  // namespace mpps
