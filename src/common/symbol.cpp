#include "src/common/symbol.hpp"

#include <deque>
#include <mutex>
#include <unordered_map>

namespace mpps {
namespace {

// The intern table.  A deque gives stable addresses for the stored strings,
// so Symbol::text() string_views never dangle.
struct InternTable {
  std::mutex mu;
  std::deque<std::string> texts;
  std::unordered_map<std::string_view, std::uint32_t> index;

  InternTable() {
    texts.emplace_back("");  // id 0: the empty symbol
    index.emplace(texts.back(), 0u);
  }
};

InternTable& table() {
  static InternTable t;
  return t;
}

}  // namespace

Symbol Symbol::intern(std::string_view text) {
  InternTable& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  if (auto it = t.index.find(text); it != t.index.end()) {
    return Symbol{it->second};
  }
  t.texts.emplace_back(text);
  auto id = static_cast<std::uint32_t>(t.texts.size() - 1);
  t.index.emplace(t.texts.back(), id);
  return Symbol{id};
}

std::string_view Symbol::text() const {
  InternTable& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.texts[id_];
}

std::size_t symbol_table_size() {
  InternTable& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.texts.size();
}

}  // namespace mpps
