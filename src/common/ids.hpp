// Strong typedefs for the many integer identifiers that flow through the
// system.  Mixing a node id with a bucket index is a compile error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace mpps {

/// CRTP-free strong integer id.  `Tag` makes each instantiation distinct.
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : value_(v) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != invalid_rep; }

  static constexpr StrongId invalid() { return StrongId{invalid_rep}; }

  friend constexpr bool operator==(StrongId a, StrongId b) = default;
  friend constexpr auto operator<=>(StrongId a, StrongId b) = default;

 private:
  static constexpr Rep invalid_rep = static_cast<Rep>(-1);
  Rep value_ = invalid_rep;
};

struct WmeIdTag {};
struct NodeIdTag {};
struct ProductionIdTag {};
struct BucketIdTag {};
struct ProcIdTag {};
struct ActivationIdTag {};

/// Unique id of a working-memory element (also its creation timetag order).
using WmeId = StrongId<WmeIdTag, std::uint64_t>;
/// Id of a node in the Rete network.
using NodeId = StrongId<NodeIdTag>;
/// Id of a production (rule).
using ProductionId = StrongId<ProductionIdTag>;
/// Index of a hash bucket in one of the two global token hash tables.
using BucketId = StrongId<BucketIdTag>;
/// Index of a simulated processor.
using ProcId = StrongId<ProcIdTag>;
/// Id of one node activation in a trace.
using ActivationId = StrongId<ActivationIdTag, std::uint64_t>;

}  // namespace mpps

namespace std {
template <typename Tag, typename Rep>
struct hash<mpps::StrongId<Tag, Rep>> {
  size_t operator()(mpps::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
