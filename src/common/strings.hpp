// Small string utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mpps {

/// Splits on any run of whitespace; no empty fields are produced.
std::vector<std::string_view> split_ws(std::string_view s);

/// Strips leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// True if `s` parses completely as a signed long (base 10).
bool parse_int(std::string_view s, long& out);

/// True if `s` parses completely as a double.
bool parse_double(std::string_view s, double& out);

/// Formats a double with `prec` digits after the point (locale-independent).
std::string format_fixed(double v, int prec);

}  // namespace mpps
