// Deterministic, seedable random number generation.  Every stochastic piece
// of the system (random bucket distribution, synthetic trace generation,
// Monte-Carlo runs of the probabilistic model) takes an explicit seed so all
// experiments are exactly reproducible.
#pragma once

#include <cstdint>

namespace mpps {

/// splitmix64 — used to expand a user seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, tiny state.  Satisfies
/// UniformRandomBitGenerator so it plugs into <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x1989'0420) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n).  n must be > 0.
  constexpr std::uint64_t below(std::uint64_t n) {
    // Lemire's multiply-shift via 32x32 halves (portable: no __int128).
    // Bias < 2^-64 * n — irrelevant for simulation workloads.
    const std::uint64_t x = operator()();
    const std::uint64_t x_hi = x >> 32;
    const std::uint64_t x_lo = x & 0xFFFFFFFFull;
    const std::uint64_t n_hi = n >> 32;
    const std::uint64_t n_lo = n & 0xFFFFFFFFull;
    const std::uint64_t mid =
        ((x_lo * n_lo) >> 32) + (x_hi * n_lo & 0xFFFFFFFFull) +
        (x_lo * n_hi & 0xFFFFFFFFull);
    return x_hi * n_hi + (x_hi * n_lo >> 32) + (x_lo * n_hi >> 32) +
           (mid >> 32);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

}  // namespace mpps
