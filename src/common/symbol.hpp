// Interned symbols.  OPS5 programs compare symbols constantly (every
// constant test, every variable-binding consistency check); interning makes
// comparison a single integer compare, which is also what the 1989 OPS83
// runtimes did.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mpps {

/// An interned string.  Equality and hashing are O(1).  Symbols are never
/// freed; the intern table lives for the process lifetime (production-system
/// vocabularies are small and stable).
class Symbol {
 public:
  constexpr Symbol() = default;

  /// Interns `text` (or finds the existing entry) and returns its symbol.
  static Symbol intern(std::string_view text);

  /// The symbol's text.  Valid for the process lifetime.
  [[nodiscard]] std::string_view text() const;

  [[nodiscard]] constexpr std::uint32_t id() const { return id_; }
  [[nodiscard]] constexpr bool empty() const { return id_ == 0; }

  friend constexpr bool operator==(Symbol a, Symbol b) = default;
  /// Orders by intern id (stable within a process, not lexicographic).
  friend constexpr auto operator<=>(Symbol a, Symbol b) = default;

 private:
  constexpr explicit Symbol(std::uint32_t id) : id_(id) {}
  std::uint32_t id_ = 0;  // 0 is the empty symbol ""
};

/// Number of distinct symbols interned so far (diagnostics / tests).
std::size_t symbol_table_size();

}  // namespace mpps

namespace std {
template <>
struct hash<mpps::Symbol> {
  size_t operator()(mpps::Symbol s) const noexcept {
    // Fibonacci hashing spreads consecutive intern ids across buckets.
    return static_cast<size_t>(s.id()) * 0x9E3779B97F4A7C15ull;
  }
};
}  // namespace std
