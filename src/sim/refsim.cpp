#include "src/sim/refsim.hpp"

#include <algorithm>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/error.hpp"

namespace mpps::sim {
namespace {

using trace::Side;
using trace::Trace;
using trace::TraceActivation;
using trace::TraceCycle;

// What a processor is asked to do.  Mirrors the documented task taxonomy
// of the mapping (simulator.hpp's header comment), not CycleSim's code.
enum class RefWork : std::uint8_t {
  Roots,          // broadcast mode: constant tests + locally owned roots
  Activation,     // merged mapping: store + generate on one processor
  PairLeft,       // pair mapping: receive, forward to partner, do own half
  PairRight,      // pair mapping: the partner's half
  ConstantTests,  // dedicated constant-test processor
  Instantiation,  // conflict-set processor: receive + select
};

struct RefTask {
  RefWork work = RefWork::Activation;
  std::size_t act = 0;       // activation index (when applicable)
  std::uint32_t ct_share = 0;  // constant-test processor index
  bool charged_receive = false;
};

struct RefProcessor {
  std::list<RefTask> queue;  // FIFO of tasks waiting for this processor
  bool running = false;
  SimTime done_at{};
};

/// One cycle of the reference machine.  Everything is rebuilt from
/// scratch per cycle: the id map, the children lists, the event table.
class RefCycle {
 public:
  RefCycle(const Trace& trace, const SimConfig& config,
           const Assignment& assignment, NetworkModel* net,
           std::size_t cycle_no, SimTime cycle_start)
      : cycle_(trace.cycles[cycle_no]),
        config_(config),
        assignment_(assignment),
        net_(net),
        cycle_no_(cycle_no),
        n_match_(config.match_processors),
        n_ct_(config.constant_test_processors),
        n_cs_(config.conflict_set_processors),
        procs_(n_match_ + n_ct_ + n_cs_),
        cs_received_(n_cs_, 0) {
    index_activations();
    metrics_.start = cycle_start;
    metrics_.procs.resize(n_match_);
  }

  /// Runs the cycle to quiescence and fills in the metrics.
  CycleMetrics run() {
    distribute_wme_changes(metrics_.start);
    while (!events_.empty()) {
      const auto first = events_.begin();
      const Posted posted = first->second;
      const SimTime now = SimTime::ns(first->first.first);
      events_.erase(first);
      RefProcessor& proc = procs_[posted.proc];
      if (posted.is_arrival) {
        proc.queue.push_back(posted.task);
        if (!proc.running) begin_task(posted.proc, now);
      } else {
        proc.running = false;
        if (!proc.queue.empty()) begin_task(posted.proc, now);
      }
    }
    report_conflict_sets();
    SimTime end = metrics_.start;
    for (const RefProcessor& proc : procs_) end = std::max(end, proc.done_at);
    end = std::max(end, control_free_at_);
    end += quiescence_tail();
    end += config_.costs.resolve_cost;
    metrics_.end = end;
    return metrics_;
  }

  [[nodiscard]] std::uint64_t local_deliveries() const { return local_; }
  [[nodiscard]] std::uint64_t events() const { return next_post_; }
  [[nodiscard]] SimTime network_busy() const { return wire_time_; }
  [[nodiscard]] SimTime termination_overhead() const { return tail_; }

 private:
  struct Posted {
    bool is_arrival = true;
    std::uint32_t proc = 0;
    RefTask task;
  };

  void index_activations() {
    std::map<std::uint64_t, std::size_t> by_id;
    const std::size_t n = cycle_.activations.size();
    children_.assign(n, {});
    for (std::size_t i = 0; i < n; ++i) {
      by_id.emplace(cycle_.activations[i].id.value(), i);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const TraceActivation& a = cycle_.activations[i];
      if (!a.parent.valid()) {
        roots_.push_back(i);
        continue;
      }
      const auto it = by_id.find(a.parent.value());
      if (it == by_id.end() || it->second >= i) {
        throw RuntimeError("refsim: cycle " + std::to_string(cycle_no_) +
                           ": activation " + std::to_string(a.id.value()) +
                           " has a missing or forward-declared parent");
      }
      children_[it->second].push_back(i);
    }
  }

  [[nodiscard]] const TraceActivation& act(std::size_t i) const {
    return cycle_.activations[i];
  }
  [[nodiscard]] bool pair_mapping() const {
    return config_.mapping == MappingMode::ProcessorPairs;
  }
  [[nodiscard]] std::uint32_t partition_of(std::uint32_t bucket) const {
    return assignment_.proc_of(cycle_no_, bucket);
  }
  [[nodiscard]] std::uint32_t storing_proc(std::uint32_t partition) const {
    return pair_mapping() ? 2 * partition : partition;
  }
  [[nodiscard]] std::uint32_t partner_proc(std::uint32_t partition) const {
    return pair_mapping() ? 2 * partition + 1 : partition;
  }

  /// Network node of a processor (node 0 is the control processor).
  [[nodiscard]] static std::uint32_t node_of(std::uint32_t proc) {
    return proc + 1;
  }
  static constexpr std::uint32_t kControlNode = 0;

  /// Charges one unicast leaving `src_node` at `departure`; returns the
  /// arrival time at `dst_node`.
  SimTime charge_unicast(std::uint32_t src_node, std::uint32_t dst_node,
                         SimTime departure) {
    const NetCharge c = net_->cost(src_node, dst_node, departure);
    wire_time_ += c.latency;
    return departure + c.departure_delay + c.latency;
  }

  void post(bool is_arrival, std::uint32_t proc, RefTask task, SimTime at) {
    Posted p;
    p.is_arrival = is_arrival;
    p.proc = proc;
    p.task = task;
    events_.emplace(std::make_pair(at.nanos(), next_post_++), p);
  }

  /// Step 1: the control processor distributes the cycle's WM changes —
  /// one hardware broadcast, or one serialized send per destination.
  void distribute_wme_changes(SimTime t0) {
    const CostModel& costs = config_.costs;
    const std::uint32_t destinations = n_ct_ > 0 ? n_ct_ : n_match_;
    std::uint32_t far = 0;
    std::uint32_t far_hops = 0;
    for (std::uint32_t d = 0; d < destinations; ++d) {
      const std::uint32_t dest = n_ct_ > 0 ? n_match_ + d : d;
      RefTask task;
      if (n_ct_ > 0) {
        task.work = RefWork::ConstantTests;
        task.ct_share = d;
      } else {
        task.work = RefWork::Roots;
      }
      task.charged_receive = true;
      if (costs.hardware_broadcast) {
        // One physical broadcast: pure route latency per destination,
        // charged once as a flood to the farthest destination below.
        const std::uint32_t h = net_->hops(kControlNode, node_of(dest));
        if (d == 0 || h > far_hops) {
          far = dest;
          far_hops = h;
        }
        post(true, dest, task,
             t0 + costs.send_overhead +
                 net_->latency(kControlNode, node_of(dest)));
      } else {
        const SimTime leaves =
            t0 + costs.send_overhead * static_cast<std::int64_t>(d + 1);
        post(true, dest, task,
             charge_unicast(kControlNode, node_of(dest), leaves));
      }
    }
    if (costs.hardware_broadcast) {
      wire_time_ += net_->charge_flood(kControlNode, node_of(far));
    }
  }

  void begin_task(std::uint32_t proc_id, SimTime now) {
    RefProcessor& proc = procs_[proc_id];
    const RefTask task = proc.queue.front();
    proc.queue.pop_front();
    proc.running = true;
    SimTime t = now;
    if (task.charged_receive) t += config_.costs.recv_overhead;
    switch (task.work) {
      case RefWork::Roots:
        t = do_roots(proc_id, t);
        break;
      case RefWork::Activation:
        t = do_store(proc_id, task.act, t);
        t = do_generate(proc_id, task.act, t);
        break;
      case RefWork::PairLeft:
        t = do_pair_left(proc_id, task.act, t);
        break;
      case RefWork::PairRight:
        t = do_pair_right(proc_id, task.act, t);
        break;
      case RefWork::ConstantTests:
        t = do_constant_tests(proc_id, task.ct_share, t);
        break;
      case RefWork::Instantiation:
        t += config_.conflict_select_cost;
        break;
    }
    proc.done_at = t;
    if (proc_id < n_match_) metrics_.procs[proc_id].busy += t - now;
    post(false, proc_id, RefTask{}, t);
  }

  /// Broadcast mode: every match processor repeats the constant tests,
  /// then handles the root activations whose buckets it owns.
  SimTime do_roots(std::uint32_t proc_id, SimTime t) {
    t += config_.costs.constant_tests;
    for (std::size_t root : roots_) {
      const TraceActivation& a = act(root);
      const std::uint32_t part = partition_of(a.bucket);
      if (!pair_mapping()) {
        if (part != proc_id) continue;
        t = do_store(proc_id, root, t);
        t = do_generate(proc_id, root, t);
        continue;
      }
      // Pair mapping: the storing side adds the token while the opposite
      // side searches its bucket and generates successors.
      const bool stores_here = (a.side == Side::Left)
                                   ? proc_id == storing_proc(part)
                                   : proc_id == partner_proc(part);
      const bool generates_here = (a.side == Side::Left)
                                      ? proc_id == partner_proc(part)
                                      : proc_id == storing_proc(part);
      if (stores_here) t = do_store(proc_id, root, t);
      if (generates_here) t = do_generate(proc_id, root, t);
    }
    return t;
  }

  /// Dedicated constant-test processor: a ceil-divided share of the
  /// constant-test work, then one message per root it is responsible for
  /// (roots are dealt round-robin over the constant-test processors).
  SimTime do_constant_tests(std::uint32_t proc_id, std::uint32_t share,
                            SimTime t) {
    const CostModel& costs = config_.costs;
    t += SimTime::ns((costs.constant_tests.nanos() + n_ct_ - 1) / n_ct_);
    std::uint32_t dealt = 0;
    for (std::size_t root : roots_) {
      if (dealt++ % n_ct_ != share) continue;
      t += costs.send_overhead;
      ++metrics_.messages;
      deliver_token(proc_id, root, t);
    }
    return t;
  }

  /// A token message lands on the processor that stores its bucket,
  /// charged through the network from `src_proc`.
  void deliver_token(std::uint32_t src_proc, std::size_t act_index,
                     SimTime departure) {
    const std::uint32_t part = partition_of(act(act_index).bucket);
    const std::uint32_t dest = storing_proc(part);
    RefTask task;
    task.work = pair_mapping() ? RefWork::PairLeft : RefWork::Activation;
    task.act = act_index;
    task.charged_receive = true;
    post(true, dest, task,
         charge_unicast(node_of(src_proc), node_of(dest), departure));
  }

  /// Pair mapping, storing-side processor: forward the token to the
  /// partner first, then do this side's half of the work.
  SimTime do_pair_left(std::uint32_t proc_id, std::size_t act_index,
                       SimTime t) {
    t += config_.costs.send_overhead;
    ++metrics_.messages;
    RefTask partner;
    partner.work = RefWork::PairRight;
    partner.act = act_index;
    partner.charged_receive = true;
    const std::uint32_t dest =
        partner_proc(partition_of(act(act_index).bucket));
    post(true, dest, partner,
         charge_unicast(node_of(proc_id), node_of(dest), t));
    return act(act_index).side == Side::Left
               ? do_store(proc_id, act_index, t)
               : do_generate(proc_id, act_index, t);
  }

  SimTime do_pair_right(std::uint32_t proc_id, std::size_t act_index,
                        SimTime t) {
    return act(act_index).side == Side::Left
               ? do_generate(proc_id, act_index, t)
               : do_store(proc_id, act_index, t);
  }

  /// Token add/delete.  The storing side is the one the activation is
  /// attributed to in the per-processor metrics.
  SimTime do_store(std::uint32_t proc_id, std::size_t act_index, SimTime t) {
    const TraceActivation& a = act(act_index);
    if (proc_id < n_match_) {
      ++metrics_.procs[proc_id].activations;
      if (a.side == Side::Left) ++metrics_.procs[proc_id].left_activations;
    }
    return t + config_.costs.token_cost(a.side == Side::Left);
  }

  /// Opposite-bucket search: generate every successor token in order and
  /// route it (free local enqueue, or a message), then the activation's
  /// instantiations (to a conflict-set processor or the control
  /// processor, which serializes its receive overheads).
  SimTime do_generate(std::uint32_t proc_id, std::size_t act_index,
                      SimTime t) {
    const CostModel& costs = config_.costs;
    const TraceActivation& a = act(act_index);
    for (std::size_t child : children_[act_index]) {
      t += costs.per_successor;
      const std::uint32_t part = partition_of(act(child).bucket);
      const std::uint32_t dest = storing_proc(part);
      if (dest == proc_id) {
        ++local_;
        RefTask task;
        task.work = pair_mapping() ? RefWork::PairLeft : RefWork::Activation;
        task.act = child;
        task.charged_receive = false;
        post(true, dest, task, t);
      } else {
        t += costs.send_overhead;
        ++metrics_.messages;
        deliver_token(proc_id, child, t);
      }
    }
    for (std::uint32_t i = 0; i < a.instantiations; ++i) {
      t += costs.per_successor;
      if (!config_.charge_instantiation_messages) continue;
      t += costs.send_overhead;
      ++metrics_.messages;
      if (n_cs_ > 0) {
        const std::uint32_t slot = a.bucket % n_cs_;
        const std::uint32_t cs = n_match_ + n_ct_ + slot;
        ++cs_received_[slot];
        RefTask task;
        task.work = RefWork::Instantiation;
        task.charged_receive = true;
        post(true, cs, task, charge_unicast(node_of(proc_id), node_of(cs), t));
      } else {
        const SimTime arrival =
            charge_unicast(node_of(proc_id), kControlNode, t);
        const SimTime begin = std::max(control_free_at_, arrival);
        control_free_at_ = begin + costs.recv_overhead;
      }
    }
    return t;
  }

  /// Conflict-set processors forward their pre-selected best
  /// instantiation to the control processor after the cycle drains.
  void report_conflict_sets() {
    const CostModel& costs = config_.costs;
    for (std::uint32_t j = 0; j < n_cs_; ++j) {
      if (cs_received_[j] == 0) continue;
      RefProcessor& cs = procs_[n_match_ + n_ct_ + j];
      cs.done_at += costs.send_overhead;
      ++metrics_.messages;
      const SimTime arrival = charge_unicast(node_of(n_match_ + n_ct_ + j),
                                             kControlNode, cs.done_at);
      const SimTime begin = std::max(control_free_at_, arrival);
      control_free_at_ = begin + costs.recv_overhead;
    }
  }

  /// Termination-detection charge appended to the cycle (the paper's
  /// simulations charge none; see TerminationModel).
  SimTime quiescence_tail() {
    const CostModel& costs = config_.costs;
    SimTime tail{};
    switch (config_.termination) {
      case TerminationModel::None:
        break;
      case TerminationModel::AckCounting: {
        const SimTime per_msg = costs.send_overhead + costs.recv_overhead;
        tail = SimTime::ns(static_cast<std::int64_t>(metrics_.messages) *
                           per_msg.nanos() /
                           std::max<std::int64_t>(1, n_match_)) +
               costs.send_overhead + costs.recv_overhead +
               2 * costs.wire_latency;
        break;
      }
      case TerminationModel::BarrierPoll:
        tail = static_cast<std::int64_t>(n_match_) *
                   (costs.send_overhead + costs.recv_overhead) +
               2 * costs.wire_latency;
        break;
    }
    tail_ += tail;
    return tail;
  }

  const TraceCycle& cycle_;
  const SimConfig& config_;
  const Assignment& assignment_;
  NetworkModel* net_;  // owned by ref_simulate(); one instance per run
  const std::size_t cycle_no_;
  const std::uint32_t n_match_;
  const std::uint32_t n_ct_;
  const std::uint32_t n_cs_;

  std::vector<std::size_t> roots_;
  std::vector<std::vector<std::size_t>> children_;
  std::vector<RefProcessor> procs_;
  std::vector<std::uint64_t> cs_received_;
  // Pending events ordered by (time, posting order): simultaneous events
  // are handled in the order they were created.
  std::map<std::pair<std::int64_t, std::uint64_t>, Posted> events_;
  std::uint64_t next_post_ = 0;
  CycleMetrics metrics_;
  std::uint64_t local_ = 0;
  SimTime wire_time_{};
  SimTime control_free_at_{};
  SimTime tail_{};
};

}  // namespace

SimResult ref_simulate(const Trace& trace, const SimConfig& config,
                       const Assignment& assignment) {
  if (config.mapping == MappingMode::ProcessorPairs &&
      (config.match_processors < 2 || config.match_processors % 2 != 0)) {
    throw RuntimeError(
        "processor-pair mapping requires an even number (>= 2) of match "
        "processors");
  }
  if (assignment.num_procs() != config.partitions()) {
    throw RuntimeError(
        "bucket assignment targets " + std::to_string(assignment.num_procs()) +
        " partitions but the configuration implies " +
        std::to_string(config.partitions()));
  }
  SimResult result;
  result.match_processors = config.match_processors;
  SimTime clock{};
  const std::uint32_t total_nodes = 1 + config.match_processors +
                                    config.constant_test_processors +
                                    config.conflict_set_processors;
  std::unique_ptr<NetworkModel> net =
      make_network(config.network, config.costs, total_nodes);
  for (std::size_t c = 0; c < trace.cycles.size(); ++c) {
    RefCycle cycle(trace, config, assignment, net.get(), c, clock);
    CycleMetrics metrics = cycle.run();
    clock = metrics.end;
    result.messages += metrics.messages;
    result.local_deliveries += cycle.local_deliveries();
    result.events += cycle.events();
    result.network_busy += cycle.network_busy();
    result.termination_overhead += cycle.termination_overhead();
    result.cycles.push_back(std::move(metrics));
  }
  result.makespan = clock;
  result.net = net->stats();
  return result;
}

namespace {

std::string diverged_time(const std::string& field, SimTime a, SimTime b) {
  return field + ": fast " + std::to_string(a.nanos()) + " ns vs ref " +
         std::to_string(b.nanos()) + " ns";
}

std::string diverged_count(const std::string& field, std::uint64_t a,
                           std::uint64_t b) {
  return field + ": fast " + std::to_string(a) + " vs ref " +
         std::to_string(b);
}

}  // namespace

std::string describe_divergence(const SimResult& fast, const SimResult& ref) {
  if (fast.makespan != ref.makespan) {
    return diverged_time("makespan", fast.makespan, ref.makespan);
  }
  if (fast.messages != ref.messages) {
    return diverged_count("messages", fast.messages, ref.messages);
  }
  if (fast.local_deliveries != ref.local_deliveries) {
    return diverged_count("local deliveries", fast.local_deliveries,
                          ref.local_deliveries);
  }
  if (fast.events != ref.events) {
    return diverged_count("kernel events", fast.events, ref.events);
  }
  if (fast.network_busy != ref.network_busy) {
    return diverged_time("network busy", fast.network_busy, ref.network_busy);
  }
  if (fast.termination_overhead != ref.termination_overhead) {
    return diverged_time("termination overhead", fast.termination_overhead,
                         ref.termination_overhead);
  }
  if (fast.match_processors != ref.match_processors) {
    return diverged_count("match processors", fast.match_processors,
                          ref.match_processors);
  }
  if (fast.net.messages != ref.net.messages) {
    return diverged_count("net charged messages", fast.net.messages,
                          ref.net.messages);
  }
  if (fast.net.total_latency != ref.net.total_latency) {
    return diverged_time("net total latency", fast.net.total_latency,
                         ref.net.total_latency);
  }
  if (fast.net.total_delay != ref.net.total_delay) {
    return diverged_time("net contention delay", fast.net.total_delay,
                         ref.net.total_delay);
  }
  if (fast.net.hop_histogram != ref.net.hop_histogram) {
    return "net hop histogram diverged";
  }
  if (fast.net != ref.net) {
    return "net stats (per-link traffic or geometry) diverged";
  }
  if (fast.cycles.size() != ref.cycles.size()) {
    return diverged_count("cycle count", fast.cycles.size(),
                          ref.cycles.size());
  }
  for (std::size_t c = 0; c < fast.cycles.size(); ++c) {
    const CycleMetrics& a = fast.cycles[c];
    const CycleMetrics& b = ref.cycles[c];
    const std::string at = "cycle " + std::to_string(c) + " ";
    if (a.start != b.start) return diverged_time(at + "start", a.start, b.start);
    if (a.end != b.end) return diverged_time(at + "end", a.end, b.end);
    if (a.messages != b.messages) {
      return diverged_count(at + "messages", a.messages, b.messages);
    }
    if (a.procs.size() != b.procs.size()) {
      return diverged_count(at + "proc count", a.procs.size(),
                            b.procs.size());
    }
    for (std::size_t p = 0; p < a.procs.size(); ++p) {
      const ProcCycleMetrics& pa = a.procs[p];
      const ProcCycleMetrics& pb = b.procs[p];
      const std::string pat = at + "proc " + std::to_string(p) + " ";
      if (pa.busy != pb.busy) {
        return diverged_time(pat + "busy", pa.busy, pb.busy);
      }
      if (pa.activations != pb.activations) {
        return diverged_count(pat + "activations", pa.activations,
                              pb.activations);
      }
      if (pa.left_activations != pb.left_activations) {
        return diverged_count(pat + "left activations", pa.left_activations,
                              pb.left_activations);
      }
    }
  }
  return {};
}

}  // namespace mpps::sim
