#include "src/sim/network.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "src/common/error.hpp"

namespace mpps::sim {
namespace {

SimTime hop_latency_of(const NetworkConfig& config, const CostModel& costs) {
  return config.hop_latency == kZeroTime ? costs.wire_latency
                                         : config.hop_latency;
}

// ---------------------------------------------------------------------------
// ConstantNet: every remote message is one hop on one shared "wire" link.

class ConstantNet final : public NetworkModel {
 public:
  ConstantNet(SimTime hop_latency, bool fault) : fault_(fault) {
    stats_.kind = NetKind::Constant;
    stats_.hop_latency = hop_latency;
    stats_.links.resize(1);
  }

  std::uint32_t hops(std::uint32_t src, std::uint32_t dst) const override {
    return src == dst ? 0u : 1u;
  }

  SimTime latency(std::uint32_t src, std::uint32_t dst) const override {
    return stats_.hop_latency * static_cast<std::int64_t>(hops(src, dst));
  }

  NetCharge cost(std::uint32_t src, std::uint32_t dst,
                 SimTime /*ready*/) override {
    return {kZeroTime, charge(hops(src, dst))};
  }

  SimTime charge_flood(std::uint32_t src, std::uint32_t far_dst) override {
    return charge(hops(src, far_dst));
  }

 private:
  SimTime charge(std::uint32_t h) {
    record_hops(stats_, h);
    // The single pseudo-link sees every charged traversal.
    SimTime charged =
        stats_.hop_latency *
        static_cast<std::int64_t>(fault_ ? std::min(h, 1u) : h);
    stats_.links[0].messages += 1;
    stats_.links[0].busy = stats_.links[0].busy + charged;
    stats_.total_latency = stats_.total_latency + charged;
    return charged;
  }

  static void record_hops(NetStats& s, std::uint32_t h) {
    s.messages += 1;
    if (s.hop_histogram.size() <= h) s.hop_histogram.resize(h + 1, 0);
    s.hop_histogram[h] += 1;
  }

  bool fault_;
};

// ---------------------------------------------------------------------------
// GridNet: k-ary d-dimensional mesh or torus.  Nodes carry mixed-radix
// coordinates over `dims` (innermost dimension first); the hop count is
// the per-dimension distance sum (wrapped for the torus) and messages are
// routed dimension-order (all of dim 0, then dim 1, ...) for link
// attribution.  Directed link ids: (node * ndims + dim) * 2 + direction,
// direction 0 = increasing coordinate.

class GridNet final : public NetworkModel {
 public:
  GridNet(NetKind kind, std::vector<std::uint32_t> dims, SimTime hop_latency,
          bool fault)
      : wrap_(kind == NetKind::Torus), fault_(fault) {
    stats_.kind = kind;
    stats_.dims = std::move(dims);
    stats_.hop_latency = hop_latency;
    std::size_t nodes = 1;
    for (std::uint32_t d : stats_.dims) nodes *= d;
    stats_.links.resize(nodes * stats_.dims.size() * 2);
  }

  std::uint32_t hops(std::uint32_t src, std::uint32_t dst) const override {
    std::uint32_t total = 0;
    std::uint32_t s = src;
    std::uint32_t d = dst;
    for (std::uint32_t k : stats_.dims) {
      auto sc = s % k;
      auto dc = d % k;
      std::uint32_t dist =
          sc > dc ? sc - dc : dc - sc;  // mesh: Manhattan per dimension
      if (wrap_) dist = std::min(dist, k - dist);
      total += dist;
      s /= k;
      d /= k;
    }
    return total;
  }

  SimTime latency(std::uint32_t src, std::uint32_t dst) const override {
    return stats_.hop_latency * static_cast<std::int64_t>(hops(src, dst));
  }

  NetCharge cost(std::uint32_t src, std::uint32_t dst,
                 SimTime /*ready*/) override {
    return {kZeroTime, charge(src, dst)};
  }

  SimTime charge_flood(std::uint32_t src, std::uint32_t far_dst) override {
    return charge(src, far_dst);
  }

 private:
  // Walks the dimension-order route, attributing one traversal of
  // `hop_latency` to each directed link crossed.
  SimTime charge(std::uint32_t src, std::uint32_t dst) {
    std::uint32_t h = hops(src, dst);
    stats_.messages += 1;
    if (stats_.hop_histogram.size() <= h)
      stats_.hop_histogram.resize(h + 1, 0);
    stats_.hop_histogram[h] += 1;

    const SimTime per_hop = stats_.hop_latency;
    std::uint32_t at = src;
    std::uint32_t stride = 1;
    for (std::size_t dim = 0; dim < stats_.dims.size(); ++dim) {
      const std::uint32_t k = stats_.dims[dim];
      std::uint32_t cur = (at / stride) % k;
      const std::uint32_t want = (dst / stride) % k;
      while (cur != want) {
        // Step toward `want`; the torus takes the shorter way around
        // (ties go the increasing direction, matching hops()'s min).
        const std::uint32_t up_dist = (want + k - cur) % k;
        const std::uint32_t down_dist = (cur + k - want) % k;
        const bool up = wrap_ ? up_dist <= down_dist : want > cur;
        const std::size_t link =
            (static_cast<std::size_t>(at) * stats_.dims.size() + dim) * 2 +
            (up ? 0 : 1);
        stats_.links[link].messages += 1;
        stats_.links[link].busy = stats_.links[link].busy + per_hop;
        const std::uint32_t next = up ? (cur + 1) % k : (cur + k - 1) % k;
        at = at - cur * stride + next * stride;
        cur = next;
      }
      stride *= k;
    }
    SimTime total =
        per_hop * static_cast<std::int64_t>(fault_ ? std::min(h, 1u) : h);
    stats_.total_latency = stats_.total_latency + total;
    return total;
  }

  bool wrap_;
  bool fault_;
};

// ---------------------------------------------------------------------------
// FatTreeNet: `arity`-way tree with nodes at the leaves.  The distance
// between distinct leaves is 2m hops, where m is the lowest level at
// which they share an ancestor (m in [1, levels]).  Contention: each
// leaf's uplink into the tree serializes its injections — a message
// entering at `ready` waits until the previous one from the same source
// has occupied the uplink for one hop time.  Keying the state by SOURCE
// only keeps the model order-independent across engines (see header).
// Link ids: one uplink per leaf.

class FatTreeNet final : public NetworkModel {
 public:
  FatTreeNet(std::uint32_t arity, std::uint32_t levels, std::uint32_t nodes,
             SimTime hop_latency, bool fault)
      : fault_(fault) {
    stats_.kind = NetKind::FatTree;
    stats_.arity = arity;
    stats_.levels = levels;
    stats_.hop_latency = hop_latency;
    stats_.links.resize(nodes);
    uplink_busy_until_.assign(nodes, kZeroTime);
  }

  std::uint32_t hops(std::uint32_t src, std::uint32_t dst) const override {
    if (src == dst) return 0;
    std::uint32_t m = 0;
    std::uint32_t s = src;
    std::uint32_t d = dst;
    while (s != d) {
      s /= stats_.arity;
      d /= stats_.arity;
      ++m;
    }
    return 2 * m;  // m hops up to the common ancestor, m back down
  }

  SimTime latency(std::uint32_t src, std::uint32_t dst) const override {
    return stats_.hop_latency * static_cast<std::int64_t>(hops(src, dst));
  }

  NetCharge cost(std::uint32_t src, std::uint32_t dst,
                 SimTime ready) override {
    std::uint32_t h = hops(src, dst);
    SimTime charged = record(src, h);
    SimTime delay = kZeroTime;
    if (h > 0) {
      SimTime busy = uplink_busy_until_[src];
      if (busy > ready) delay = busy - ready;
      // The uplink is occupied for one hop time per injected message.
      uplink_busy_until_[src] = ready + delay + stats_.hop_latency;
      stats_.total_delay = stats_.total_delay + delay;
    }
    return {delay, charged};
  }

  SimTime charge_flood(std::uint32_t src, std::uint32_t far_dst) override {
    // Broadcast floods use the dedicated control channel: charged and
    // recorded, but no uplink contention.
    return record(src, hops(src, far_dst));
  }

 private:
  SimTime record(std::uint32_t src, std::uint32_t h) {
    stats_.messages += 1;
    if (stats_.hop_histogram.size() <= h)
      stats_.hop_histogram.resize(h + 1, 0);
    stats_.hop_histogram[h] += 1;
    if (h > 0) {
      stats_.links[src].messages += 1;
      stats_.links[src].busy = stats_.links[src].busy + stats_.hop_latency;
    }
    SimTime charged = stats_.hop_latency *
                      static_cast<std::int64_t>(fault_ ? std::min(h, 1u) : h);
    stats_.total_latency = stats_.total_latency + charged;
    return charged;
  }

  std::vector<SimTime> uplink_busy_until_;
  bool fault_;
};

}  // namespace

std::vector<std::uint32_t> resolved_dims(const NetworkConfig& config,
                                         std::uint32_t total_nodes) {
  if (!config.dims.empty()) return config.dims;
  // Near-square 2-d grid covering the node count.
  auto a = static_cast<std::uint32_t>(
      std::ceil(std::sqrt(static_cast<double>(total_nodes))));
  if (a == 0) a = 1;
  std::uint32_t b = (total_nodes + a - 1) / a;
  if (b == 0) b = 1;
  return {a, b};
}

std::uint32_t resolved_levels(const NetworkConfig& config,
                              std::uint32_t total_nodes) {
  if (config.levels != 0) return config.levels;
  std::uint32_t levels = 1;
  std::uint64_t leaves = config.arity;
  while (leaves < total_nodes && levels < 32) {
    leaves *= config.arity;
    ++levels;
  }
  return levels;
}

void validate_network(const NetworkConfig& config,
                      std::uint32_t total_nodes) {
  switch (config.kind) {
    case NetKind::Constant:
      return;
    case NetKind::Mesh:
    case NetKind::Torus: {
      auto dims = resolved_dims(config, total_nodes);
      if (dims.empty())
        throw RuntimeError("network geometry: no dimensions");
      std::uint64_t nodes = 1;
      for (std::uint32_t d : dims) {
        if (d == 0)
          throw RuntimeError("network geometry: zero-sized dimension");
        nodes *= d;
        if (nodes > (1ull << 32))
          throw RuntimeError("network geometry: grid too large");
      }
      if (nodes < total_nodes)
        throw RuntimeError("network geometry: " + std::to_string(nodes) +
                           "-node grid cannot host " +
                           std::to_string(total_nodes) +
                           " processors (control + match + ct + cs)");
      return;
    }
    case NetKind::FatTree: {
      if (config.arity < 2)
        throw RuntimeError("network geometry: fat-tree arity must be >= 2");
      std::uint32_t levels = resolved_levels(config, total_nodes);
      if (levels == 0 || levels > 32)
        throw RuntimeError("network geometry: fat-tree levels out of range");
      std::uint64_t leaves = 1;
      for (std::uint32_t i = 0; i < levels; ++i) {
        leaves *= config.arity;
        if (leaves > (1ull << 32)) break;
      }
      if (leaves < total_nodes)
        throw RuntimeError("network geometry: fat-tree with arity " +
                           std::to_string(config.arity) + " and " +
                           std::to_string(levels) + " levels has " +
                           std::to_string(leaves) +
                           " leaves, cannot host " +
                           std::to_string(total_nodes) + " processors");
      return;
    }
  }
  throw RuntimeError("network geometry: unknown network kind");
}

std::unique_ptr<NetworkModel> make_network(const NetworkConfig& config,
                                           const CostModel& costs,
                                           std::uint32_t total_nodes) {
  validate_network(config, total_nodes);
  const SimTime hop = hop_latency_of(config, costs);
  const bool fault = config.free_remote_hop_fault;
  switch (config.kind) {
    case NetKind::Constant:
      return std::make_unique<ConstantNet>(hop, fault);
    case NetKind::Mesh:
    case NetKind::Torus:
      return std::make_unique<GridNet>(
          config.kind, resolved_dims(config, total_nodes), hop, fault);
    case NetKind::FatTree:
      return std::make_unique<FatTreeNet>(
          config.arity, resolved_levels(config, total_nodes), total_nodes,
          hop, fault);
  }
  throw RuntimeError("network geometry: unknown network kind");
}

std::size_t NetStats::hottest_link() const {
  std::size_t best = static_cast<std::size_t>(-1);
  SimTime best_busy = kZeroTime;
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (links[i].messages == 0) continue;
    if (best == static_cast<std::size_t>(-1) || links[i].busy > best_busy) {
      best = i;
      best_busy = links[i].busy;
    }
  }
  return best;
}

double NetStats::avg_hops() const {
  if (messages == 0) return 0.0;
  std::uint64_t weighted = 0;
  for (std::size_t h = 0; h < hop_histogram.size(); ++h)
    weighted += hop_histogram[h] * h;
  return static_cast<double>(weighted) / static_cast<double>(messages);
}

std::uint32_t NetStats::max_hops() const {
  for (std::size_t h = hop_histogram.size(); h > 0; --h)
    if (hop_histogram[h - 1] != 0) return static_cast<std::uint32_t>(h - 1);
  return 0;
}

std::string net_link_name(const NetStats& stats, std::size_t index) {
  switch (stats.kind) {
    case NetKind::Constant:
      return "wire";
    case NetKind::Mesh:
    case NetKind::Torus: {
      std::size_t ndims = stats.dims.empty() ? 1 : stats.dims.size();
      std::size_t node = index / (ndims * 2);
      std::size_t dim = (index / 2) % ndims;
      bool up = index % 2 == 0;
      std::string name = "n";
      name += std::to_string(node);
      name += up ? "+d" : "-d";
      name += std::to_string(dim);
      return name;
    }
    case NetKind::FatTree:
      return "up n" + std::to_string(index);
  }
  return "link " + std::to_string(index);
}

std::string NetworkConfig::describe() const {
  switch (kind) {
    case NetKind::Constant:
      return "constant";
    case NetKind::Mesh:
    case NetKind::Torus: {
      std::string out = kind == NetKind::Mesh ? "mesh" : "torus";
      if (!dims.empty()) {
        out += ' ';
        for (std::size_t i = 0; i < dims.size(); ++i) {
          if (i) out += 'x';
          out += std::to_string(dims[i]);
        }
      } else {
        out += " auto";
      }
      return out;
    }
    case NetKind::FatTree:
      return "fat-tree a" + std::to_string(arity) + " l" +
             std::to_string(levels);
  }
  return "?";
}

NetKind parse_net_kind(const std::string& name) {
  if (name == "constant") return NetKind::Constant;
  if (name == "mesh") return NetKind::Mesh;
  if (name == "torus") return NetKind::Torus;
  if (name == "fattree" || name == "fat-tree") return NetKind::FatTree;
  throw RuntimeError("unknown network model '" + name +
                     "' (expected constant, mesh, torus or fattree)");
}

const char* net_kind_name(NetKind kind) {
  switch (kind) {
    case NetKind::Constant:
      return "constant";
    case NetKind::Mesh:
      return "mesh";
    case NetKind::Torus:
      return "torus";
    case NetKind::FatTree:
      return "fattree";
  }
  return "?";
}

}  // namespace mpps::sim
