// The reference simulator: a second, deliberately naive implementation of
// the Section 4 cost model and the Section 3.1/3.2 mapping semantics,
// used as a differential oracle for the optimized event-driven engine in
// simulator.cpp (the same role rete/naive.hpp plays for the match layer).
//
// Design rules (see docs/TESTING.md):
//   * Obvious over fast.  Events live in an ordered std::map and are
//     popped by lower_bound; processor queues are std::list; every cycle
//     rebuilds its activation index from scratch with plain maps and
//     vector-of-vector children lists.  No arenas, no buffer reuse, no
//     caching — nothing shared with CycleSim's optimizations.
//   * Shared spec, separate code.  The only shared pieces are the cost
//     model (sim/costs.hpp), the public config/result structs, and the
//     trace schema.  The scheduling discipline itself — FIFO per
//     processor, ties between simultaneous events broken by creation
//     order — is re-implemented from the documented semantics.
//   * Bit-for-bit comparable.  ref_simulate must agree EXACTLY with
//     sim::simulate on makespan, message counts, per-processor busy
//     times and every other SimResult field; any difference is a bug in
//     one of the two engines.  Asserted across the full Table 5-1 grid
//     in tests/sim_refsim_test.cpp and fuzzed by `mpps selfcheck`.
#pragma once

#include "src/sim/simulator.hpp"
#include "src/trace/record.hpp"

namespace mpps::sim {

/// Replays `trace` on the simulated machine exactly like sim::simulate,
/// via the naive reference implementation.  Observability sinks in
/// `config` are ignored (the reference engine records nothing).  Throws
/// mpps::RuntimeError on the same inconsistent configurations the fast
/// engine rejects.
SimResult ref_simulate(const trace::Trace& trace, const SimConfig& config,
                       const Assignment& assignment);

/// Compares two results field by field (makespan, messages, local
/// deliveries, kernel event counts, network busy, termination overhead,
/// per-cycle spans and per-processor busy/activation counts).  Returns an
/// empty string when
/// they agree exactly, otherwise a description of the FIRST divergence —
/// the differential oracle's failure message.
std::string describe_divergence(const SimResult& fast, const SimResult& ref);

}  // namespace mpps::sim
