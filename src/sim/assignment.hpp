// Bucket-to-processor assignment: the static partitioning of the global
// hash tables across match processors.  Left and right buckets with the
// same index are co-located (the simulated variation of Section 3.2).
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/costs.hpp"
#include "src/trace/record.hpp"

namespace mpps::sim {

class Assignment {
 public:
  /// Buckets dealt to processors in round-robin order (the paper's default).
  static Assignment round_robin(std::uint32_t num_buckets,
                                std::uint32_t num_procs);

  /// Uniform random assignment (the alternative the paper tried; it "failed
  /// to provide a significant improvement").
  static Assignment random(std::uint32_t num_buckets, std::uint32_t num_procs,
                           std::uint64_t seed);

  /// One map per cycle (used by the offline greedy redistribution, which
  /// produced "a series of distributions, one per cycle").  Each map has
  /// one processor index per bucket.  Throws mpps::RuntimeError when any
  /// entry is >= num_procs (naming the cycle, bucket and processor).
  static Assignment per_cycle(std::vector<std::vector<std::uint32_t>> maps,
                              std::uint32_t num_procs);

  /// A single static map.  Throws mpps::RuntimeError when any entry is
  /// >= num_procs.
  static Assignment fixed(std::vector<std::uint32_t> map,
                          std::uint32_t num_procs);

  /// Offline greedy (LPT) assignment, the paper's Section 5.2.2 algorithm:
  /// per cycle, sorts buckets by descending processing cost under `costs`
  /// (token add/delete plus successor generation) and assigns each to the
  /// least-loaded processor; zero-cost buckets are dealt round-robin.
  /// Produces one map per trace cycle.  `core::greedy_assignment` is a
  /// compatibility wrapper over this.
  static Assignment greedy(const trace::Trace& trace, std::uint32_t num_procs,
                           const CostModel& costs);

  [[nodiscard]] std::uint32_t proc_of(std::size_t cycle,
                                      std::uint32_t bucket) const {
    return map_for(cycle)[bucket];
  }

  /// The dense bucket -> processor map in effect for `cycle` (the
  /// simulator kernel caches the returned array's data pointer for the
  /// whole cycle instead of paying two indirections per lookup).
  [[nodiscard]] const std::vector<std::uint32_t>& map_for(
      std::size_t cycle) const {
    return maps_.size() == 1 ? maps_[0] : maps_[cycle % maps_.size()];
  }

  [[nodiscard]] std::uint32_t num_procs() const { return num_procs_; }

  /// Structural equality: same partition count and same per-cycle maps.
  /// The sweep engine uses it to group runs for the cross-run laws,
  /// whose monotonicity comparisons are only meaningful between runs
  /// sharing one assignment.
  friend bool operator==(const Assignment&, const Assignment&) = default;
  [[nodiscard]] std::uint32_t num_buckets() const {
    return static_cast<std::uint32_t>(maps_.empty() ? 0 : maps_[0].size());
  }

 private:
  std::vector<std::vector<std::uint32_t>> maps_;
  std::uint32_t num_procs_ = 1;
};

}  // namespace mpps::sim
