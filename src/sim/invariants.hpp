// Metamorphic / conservation-law checker for the MPC simulator: laws that
// must hold on ANY simulated run, independent of the workload, checked
// after the fact from the trace, the configuration and the SimResult.
// Together with the differential oracle (refsim.hpp) this is the second
// layer keeping the optimized engine honest — the laws catch classes of
// bug (lost messages, double-charged costs, phantom busy time) even when
// both engines agree because they share a misreading of the model.
//
// Single-run laws (check_run_invariants):
//   * cycles tile the makespan: cycle i+1 starts where cycle i ends, the
//     first cycle starts at 0, the last ends at the makespan;
//   * per-processor busy time never exceeds the cycle span;
//   * every trace activation is attributed to exactly one match
//     processor (and left counts match the trace);
//   * token conservation (merged mapping): every join-generated token is
//     either a local delivery or a message, instantiation messages on
//     top — messages + local == children + charged instantiations;
//   * busy conservation (merged mapping): total busy time across match
//     processors equals the analytic sum of charged costs — constant
//     tests + receive overheads + token add/delete + successor
//     generation + per-message send/receive overheads;
//   * zero-overhead laws: with all message costs zero, one processor
//     reproduces the analytic sequential sum exactly, and P processors
//     never exceed it (speedup >= 1) nor beat work conservation
//     (speedup <= P);
//   * network accounting (any network model): the run's network_busy
//     equals the model's total charged latency (net-busy-equality); the
//     charged latency equals hop_latency x the hop-histogram-weighted
//     hop count (net-hop-latency — this is the law that catches the
//     free-remote-hop fault, whose histogram records the true route
//     while the charge is capped at one hop); and per-link message
//     conservation — every link's busy time is hop_latency x its
//     traversal count, and the traversals across links sum to the
//     histogram's route hops (grid/constant) or its remote messages
//     (fat-tree, one uplink per injection).
//
// Cross-run laws (check_cross_run_invariants), over several runs of the
// SAME trace:
//   * token conservation is independent of the processor count: for
//     merged-mapping runs with the same instantiation-charging flag,
//     messages + local deliveries is one constant;
//   * event conservation across the cost grid: runs agreeing on the
//     routing inputs (mapping, processor counts, charging flag) dispatch
//     exactly the same number of kernel events (SimResult::events),
//     whatever their cost models — costs shift time, never routing;
//   * message-cost monotonicity: if two runs differ only in their
//     message costs and one dominates component-wise (send, receive and
//     wire latency all >=), its makespan is >= the other's — the
//     Table 5-1 grid is ordered this way by construction (the two runs
//     must share one network configuration; topology changes shift
//     routes, not just costs);
//   * hop monotonicity: a topology run whose charged message count and
//     per-hop latency match a constant-network run's can never charge
//     LESS total wire time — every route is at least one hop, so the
//     flat network is the floor of the topology family.
//
// Each check is counted into an optional obs::Registry
// ("sim.invariants.checked"/"sim.invariants.violated", plus per-law
// labelled counters), so sweeps expose how much validation ran.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/record.hpp"

namespace mpps::sim {

struct InvariantViolation {
  std::string invariant;  // short law name, e.g. "token-conservation"
  std::string detail;     // numbers: expected vs observed
};

struct InvariantReport {
  std::uint64_t checked = 0;  // individual law evaluations performed
  std::vector<InvariantViolation> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// One line per violation; empty when ok.
  [[nodiscard]] std::string summary() const;
  void merge_from(const InvariantReport& other);
};

/// Checks every single-run law applicable to `config` against `result`
/// (laws whose preconditions the configuration does not meet are
/// skipped, not failed).  `result` must be the outcome of simulating
/// `trace` under `config`.
InvariantReport check_run_invariants(const trace::Trace& trace,
                                     const SimConfig& config,
                                     const SimResult& result,
                                     obs::Registry* metrics = nullptr);

/// One (configuration, result) pair of a multi-run sweep over one trace.
/// The checker only sees the configuration, so monotonicity comparisons
/// assume every run in the vector used the SAME bucket assignment — do
/// not mix in runs whose assignment was derived from the cost model
/// (e.g. the greedy distribution).
struct ObservedRun {
  SimConfig config;
  const SimResult* result = nullptr;  // not owned
};

/// Checks the cross-run laws over several runs of the same trace.
InvariantReport check_cross_run_invariants(const trace::Trace& trace,
                                           const std::vector<ObservedRun>& runs,
                                           obs::Registry* metrics = nullptr);

}  // namespace mpps::sim
