// Pluggable interconnection-network cost models for the simulator.
//
// The paper charges a flat per-message wire latency (Nectar: 0.5 us) on
// top of the send/receive overheads; real message-passing machines route
// over a topology where distance and link contention matter.  This layer
// makes the network a model the simulator charges through:
//
//   * ConstantNet — every remote message takes one hop of `hop_latency`
//     (the paper's flat wire; the degenerate case every other model is
//     differentially tested against);
//   * MeshNet / TorusNet — k-ary d-dimensional grid, hop count is the
//     (wrapped) Manhattan distance over mixed-radix node coordinates,
//     latency is hops x hop_latency, and dimension-order routing
//     attributes per-link message/busy statistics;
//   * FatTreeNet — leaves at the bottom of an `arity`-way tree; the
//     distance between two leaves is 2m hops where m is the lowest level
//     of their common ancestor, and each leaf's UPLINK serializes
//     injections (per-source busy-until), modelling finite injection
//     bandwidth as a departure delay.
//
// Node numbering: node 0 is the control processor; simulator processor p
// (match processors first, then constant-test, then conflict-set) is
// node 1 + p.  Geometry must cover 1 + match + ct + cs nodes.
//
// Charging semantics (both engines follow it identically):
//   * a unicast message ready at time t is charged
//     `cost(src, dst, t) -> {departure_delay, latency}`; it arrives at
//     t + departure_delay + latency and the run's network_busy grows by
//     `latency`;
//   * a hardware broadcast reaches destination d at
//     t + latency(src, d) (pure, no contention: the broadcast tree is a
//     dedicated control channel) and is charged ONCE, as a single flood
//     to the farthest destination — this is the fix for the historical
//     per-destination double-charge of the flat model;
//   * a serialized broadcast is ordinary unicasts, one per destination;
//   * the analytic termination-detection tails keep the flat wire
//     latency (they model a protocol, not routed data messages).
//
// Contention state is keyed per SOURCE node only, and every source emits
// its messages at non-decreasing ready times in both engines, so the
// optimized and reference engines may interleave charge calls from
// different sources freely and still agree bit-for-bit — the property
// the differential oracle checks on every topology.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/simtime.hpp"
#include "src/sim/costs.hpp"

namespace mpps::sim {

enum class NetKind : std::uint8_t { Constant, Mesh, Torus, FatTree };

/// Value-type network description carried by SimConfig (copyable, so
/// sweep scenarios and shrinkers can clone configurations freely; each
/// engine run builds its own stateful model instance from it).
struct NetworkConfig {
  NetKind kind = NetKind::Constant;
  /// Mesh/torus dimension sizes (mixed-radix, innermost first).  Empty ⇒
  /// an auto-derived near-square 2-d grid covering the node count.
  std::vector<std::uint32_t> dims;
  /// Fat-tree branching factor (>= 2).
  std::uint32_t arity = 2;
  /// Fat-tree levels; 0 ⇒ the smallest depth whose leaf count covers the
  /// node count.
  std::uint32_t levels = 0;
  /// Per-hop wire latency; zero ⇒ CostModel::wire_latency (which keeps
  /// the constant model bit-identical to the pre-topology simulator).
  SimTime hop_latency{};
  /// Selfcheck fault: charge multi-hop routes as if they were one hop
  /// (arrivals and network_busy undercharged) while the hop histogram
  /// and link statistics keep recording the true route — the planted bug
  /// the hop-latency-consistency invariant law must catch.
  bool free_remote_hop_fault = false;

  friend bool operator==(const NetworkConfig&, const NetworkConfig&) =
      default;

  /// One short token, e.g. "constant", "mesh 4x4", "fat-tree a2 l3".
  [[nodiscard]] std::string describe() const;
};

/// What one message charge costs.
struct NetCharge {
  SimTime departure_delay{};  // contention wait before entering the wire
  SimTime latency{};          // time on the wire (charged)
};

struct NetLinkStats {
  std::uint64_t messages = 0;
  SimTime busy{};  // cumulative occupancy charged to this link

  friend bool operator==(const NetLinkStats&, const NetLinkStats&) = default;
};

/// Aggregate network observations of one run.  Carries the RESOLVED
/// geometry (auto-derived dims/levels filled in) so consumers can name
/// links without re-deriving the model.
struct NetStats {
  NetKind kind = NetKind::Constant;
  std::vector<std::uint32_t> dims;  // resolved mesh/torus geometry
  std::uint32_t arity = 0;          // resolved fat-tree arity
  std::uint32_t levels = 0;         // resolved fat-tree depth
  SimTime hop_latency{};            // the per-hop latency actually used
  std::uint64_t messages = 0;       // charged traversals (incl. floods)
  SimTime total_latency{};          // == SimResult::network_busy
  SimTime total_delay{};            // contention waits (fat-tree uplinks)
  std::vector<std::uint64_t> hop_histogram;  // index = true hop count
  std::vector<NetLinkStats> links;

  friend bool operator==(const NetStats&, const NetStats&) = default;

  /// Index of the busiest link (ties: lowest index); SIZE_MAX when no
  /// link carried traffic.
  [[nodiscard]] std::size_t hottest_link() const;
  /// Mean true hop count per charged message (0 when idle).
  [[nodiscard]] double avg_hops() const;
  /// Largest hop count observed.
  [[nodiscard]] std::uint32_t max_hops() const;
};

/// Human-readable name of link `index` of a run's network
/// ("wire", "n5+d0", "n5-d1", "up n3", ...).
std::string net_link_name(const NetStats& stats, std::size_t index);

/// The model interface both engines charge through.  Stateful (fat-tree
/// link busy-until times, statistics), so each engine run builds its own
/// instance via make_network.
class NetworkModel {
 public:
  virtual ~NetworkModel() = default;

  /// True routing distance in hops (pure; 0 iff src == dst).
  [[nodiscard]] virtual std::uint32_t hops(std::uint32_t src,
                                           std::uint32_t dst) const = 0;
  /// Pure wire latency of a src -> dst message (no contention, no fault).
  [[nodiscard]] virtual SimTime latency(std::uint32_t src,
                                        std::uint32_t dst) const = 0;
  /// Charges one unicast message entering the network at `ready`:
  /// updates contention state and statistics, returns the delay/latency
  /// the caller must apply to the arrival time and network_busy.
  virtual NetCharge cost(std::uint32_t src, std::uint32_t dst,
                         SimTime ready) = 0;
  /// Charges one hardware broadcast as a single flood along the route to
  /// `far_dst` (the farthest destination); returns the charged latency.
  virtual SimTime charge_flood(std::uint32_t src, std::uint32_t far_dst) = 0;

  [[nodiscard]] const NetStats& stats() const { return stats_; }

 protected:
  NetStats stats_;
};

/// Resolved mesh/torus dims (auto-derived when `config.dims` is empty).
std::vector<std::uint32_t> resolved_dims(const NetworkConfig& config,
                                         std::uint32_t total_nodes);
/// Resolved fat-tree depth (auto-derived when `config.levels` is 0).
std::uint32_t resolved_levels(const NetworkConfig& config,
                              std::uint32_t total_nodes);

/// Throws mpps::RuntimeError when the geometry cannot host `total_nodes`
/// nodes (dims too small, arity < 2, zero-sized dimension, ...).
void validate_network(const NetworkConfig& config, std::uint32_t total_nodes);

/// Builds a fresh model instance for one engine run over `total_nodes`
/// nodes.  Validates the geometry (see validate_network).
std::unique_ptr<NetworkModel> make_network(const NetworkConfig& config,
                                           const CostModel& costs,
                                           std::uint32_t total_nodes);

/// Parses "constant" / "mesh" / "torus" / "fattree" (also "fat-tree");
/// throws mpps::RuntimeError on anything else.
NetKind parse_net_kind(const std::string& name);
const char* net_kind_name(NetKind kind);

}  // namespace mpps::sim
