// The paper's cost model (Section 4) and message-passing overhead settings
// (Table 5-1).
#pragma once

#include "src/common/simtime.hpp"

namespace mpps::sim {

struct CostModel {
  /// Evaluating all constant-test nodes, paid by EVERY match processor at
  /// the start of each MRA cycle (work is duplicated across processors).
  SimTime constant_tests = SimTime::us(30);
  /// Adding or deleting one left token (32 us) / right token (16 us).
  SimTime left_token = SimTime::us(32);
  SimTime right_token = SimTime::us(16);
  /// Comparing a token with the opposite memory, per successor generated.
  SimTime per_successor = SimTime::us(16);
  /// Interconnection-network latency per message (Nectar: 0.5 us).
  SimTime wire_latency = SimTime::half_us(1);
  /// Message-processing overheads (Table 5-1 varies these).
  SimTime send_overhead{};
  SimTime recv_overhead{};
  /// True: the cycle-start wme packet is a hardware broadcast (one send on
  /// the control processor).  False: one send per match processor,
  /// serialized on the control processor.
  bool hardware_broadcast = true;
  /// Control-processor cost per cycle for conflict-resolution + act.  The
  /// paper's match-focused simulation charges none.
  SimTime resolve_cost{};

  [[nodiscard]] SimTime token_cost(bool left) const {
    return left ? left_token : right_token;
  }

  /// Figure 5-1's setting: zero latency, zero message-processing overhead.
  static CostModel zero_overhead() {
    CostModel m;
    m.wire_latency = SimTime::ns(0);
    return m;
  }

  /// Table 5-1's Run 1..4: latency 0.5 us; send/recv overheads
  /// 0/0, 5/3, 10/6, 20/12 us.
  static CostModel paper_run(int run) {
    CostModel m;
    switch (run) {
      case 1: break;
      case 2:
        m.send_overhead = SimTime::us(5);
        m.recv_overhead = SimTime::us(3);
        break;
      case 3:
        m.send_overhead = SimTime::us(10);
        m.recv_overhead = SimTime::us(6);
        break;
      case 4:
        m.send_overhead = SimTime::us(20);
        m.recv_overhead = SimTime::us(12);
        break;
      default: break;
    }
    return m;
  }
};

}  // namespace mpps::sim
