#include "src/sim/invariants.hpp"

#include <algorithm>

namespace mpps::sim {

namespace {

/// Workload totals every law is phrased in terms of, computed once.
struct TraceTotals {
  std::uint64_t activations = 0;
  std::uint64_t left = 0;
  std::uint64_t children = 0;        // activations with a parent
  std::uint64_t instantiations = 0;
  SimTime serial{};  // analytic one-processor zero-overhead time
};

TraceTotals totals_of(const trace::Trace& trace, const CostModel& costs) {
  TraceTotals t;
  for (const trace::TraceCycle& cycle : trace.cycles) {
    t.serial += costs.constant_tests;
    for (const trace::TraceActivation& act : cycle.activations) {
      ++t.activations;
      if (act.side == trace::Side::Left) ++t.left;
      if (act.parent.valid()) ++t.children;
      t.instantiations += act.instantiations;
      t.serial += costs.token_cost(act.side == trace::Side::Left);
      t.serial += costs.per_successor *
                  static_cast<std::int64_t>(act.successors +
                                            act.instantiations);
    }
  }
  return t;
}

/// The plain Section 3.2 shape most laws are stated for: merged mapping,
/// no dedicated constant-test or conflict-set processors.
bool plain_merged(const SimConfig& config) {
  return config.mapping == MappingMode::Merged &&
         config.constant_test_processors == 0 &&
         config.conflict_set_processors == 0;
}

bool zero_message_costs(const CostModel& costs) {
  return costs.send_overhead == SimTime{} &&
         costs.recv_overhead == SimTime{} &&
         costs.wire_latency == SimTime{};
}

/// Accumulates one law evaluation; on `violated`, records the detail.
class Checker {
 public:
  Checker(InvariantReport& report, obs::Registry* metrics)
      : report_(report), metrics_(metrics) {}

  void check(const char* law, bool violated, const std::string& detail) {
    ++report_.checked;
    if (metrics_ != nullptr) {
      metrics_->counter("sim.invariants.checked").add();
      metrics_->counter("sim.invariants.checked", {{"invariant", law}}).add();
    }
    if (!violated) return;
    report_.violations.push_back({law, detail});
    if (metrics_ != nullptr) {
      metrics_->counter("sim.invariants.violated").add();
      metrics_->counter("sim.invariants.violated", {{"invariant", law}}).add();
    }
  }

 private:
  InvariantReport& report_;
  obs::Registry* metrics_;
};

std::string ns_pair(std::int64_t expected, std::int64_t observed) {
  return "expected " + std::to_string(expected) + " ns, observed " +
         std::to_string(observed) + " ns";
}

}  // namespace

std::string InvariantReport::summary() const {
  std::string out;
  for (const InvariantViolation& v : violations) {
    if (!out.empty()) out += "\n";
    out += v.invariant + ": " + v.detail;
  }
  return out;
}

void InvariantReport::merge_from(const InvariantReport& other) {
  checked += other.checked;
  violations.insert(violations.end(), other.violations.begin(),
                    other.violations.end());
}

InvariantReport check_run_invariants(const trace::Trace& trace,
                                     const SimConfig& config,
                                     const SimResult& result,
                                     obs::Registry* metrics) {
  InvariantReport report;
  Checker checker(report, metrics);
  const CostModel& costs = config.costs;
  const TraceTotals totals = totals_of(trace, costs);
  const std::uint32_t procs = config.match_processors;

  // Cycles tile [0, makespan] with no gaps or overlaps.
  {
    bool tiled = result.cycles.size() == trace.cycles.size();
    SimTime cursor{};
    for (const CycleMetrics& cycle : result.cycles) {
      if (cycle.start != cursor || cycle.end < cycle.start) tiled = false;
      cursor = cycle.end;
    }
    if (cursor != result.makespan) tiled = false;
    checker.check("cycle-tiling", !tiled,
                  "cycles must partition [0, makespan] in order; makespan " +
                      std::to_string(result.makespan.nanos()) + " ns over " +
                      std::to_string(result.cycles.size()) + " cycles");
  }

  // No processor is busy for longer than the cycle it is busy in.
  {
    bool within = true;
    std::string detail;
    for (std::size_t c = 0; c < result.cycles.size() && within; ++c) {
      const CycleMetrics& cycle = result.cycles[c];
      for (std::size_t p = 0; p < cycle.procs.size(); ++p) {
        const SimTime busy = cycle.procs[p].busy;
        if (busy < SimTime{} || busy > cycle.span()) {
          within = false;
          detail = "cycle " + std::to_string(c) + " proc " +
                   std::to_string(p) + ": busy " +
                   std::to_string(busy.nanos()) + " ns vs span " +
                   std::to_string(cycle.span().nanos()) + " ns";
          break;
        }
      }
    }
    checker.check("busy-within-span", !within, detail);
  }

  // Every activation is attributed to exactly one match processor.
  {
    std::uint64_t counted = 0;
    std::uint64_t left = 0;
    for (const CycleMetrics& cycle : result.cycles) {
      for (const ProcCycleMetrics& proc : cycle.procs) {
        counted += proc.activations;
        left += proc.left_activations;
      }
    }
    checker.check("activation-attribution",
                  counted != totals.activations || left != totals.left,
                  "trace has " + std::to_string(totals.activations) + " (" +
                      std::to_string(totals.left) + " left), processors saw " +
                      std::to_string(counted) + " (" + std::to_string(left) +
                      " left)");
  }

  // Network accounting: the wire time the run reports, the model's own
  // view of it, the hop histogram and the per-link traffic must all
  // describe the same traffic.
  {
    const NetStats& net = result.net;
    checker.check("net-busy-equality",
                  result.network_busy != net.total_latency,
                  ns_pair(net.total_latency.nanos(),
                          result.network_busy.nanos()));

    std::uint64_t hist_messages = 0;
    std::uint64_t hist_hops = 0;     // route length summed over messages
    std::uint64_t hist_remote = 0;   // messages with at least one hop
    for (std::size_t h = 0; h < net.hop_histogram.size(); ++h) {
      hist_messages += net.hop_histogram[h];
      hist_hops += net.hop_histogram[h] * h;
      if (h > 0) hist_remote += net.hop_histogram[h];
    }
    // The histogram records TRUE routes, so charged latency must be
    // hop_latency x total route hops — an undercharged multi-hop send
    // (the free-remote-hop fault) breaks exactly this equation.
    const SimTime expected_latency =
        net.hop_latency * static_cast<std::int64_t>(hist_hops);
    checker.check(
        "net-hop-latency",
        net.messages != hist_messages || net.total_latency != expected_latency,
        "histogram holds " + std::to_string(hist_messages) + " messages over " +
            std::to_string(hist_hops) + " hops; " +
            ns_pair(expected_latency.nanos(), net.total_latency.nanos()));

    std::uint64_t link_messages = 0;
    bool per_link_ok = true;
    for (const NetLinkStats& link : net.links) {
      link_messages += link.messages;
      if (link.busy !=
          net.hop_latency * static_cast<std::int64_t>(link.messages)) {
        per_link_ok = false;
      }
    }
    // Grid and constant networks record one link traversal per route
    // hop; the fat tree attributes each injected message to its source
    // uplink once.
    const std::uint64_t expected_traversals =
        net.kind == NetKind::FatTree ? hist_remote : hist_hops;
    checker.check("net-link-conservation",
                  link_messages != expected_traversals || !per_link_ok,
                  "links saw " + std::to_string(link_messages) +
                      " traversals, expected " +
                      std::to_string(expected_traversals) +
                      (per_link_ok ? "" : "; a link's busy time is not "
                                          "hop_latency x its traversals"));
  }

  if (plain_merged(config)) {
    // Token conservation: children either stay local or become messages;
    // instantiation messages come on top when charged.
    const std::uint64_t charged_inst =
        config.charge_instantiation_messages ? totals.instantiations : 0;
    const std::uint64_t expected = totals.children + charged_inst;
    checker.check(
        "token-conservation",
        result.messages + result.local_deliveries != expected,
        "messages (" + std::to_string(result.messages) + ") + local (" +
            std::to_string(result.local_deliveries) + ") != children (" +
            std::to_string(totals.children) + ") + charged instantiations (" +
            std::to_string(charged_inst) + ")");

    // Busy conservation: the total busy time across match processors is
    // exactly the sum of every charged cost.  Remote token messages
    // charge send on the producer and receive on the consumer;
    // instantiation messages charge only send to a match processor (the
    // control processor absorbs the receive).
    const std::uint64_t remote_children = result.messages - charged_inst;
    SimTime expected_busy =
        (costs.recv_overhead + costs.constant_tests) *
        static_cast<std::int64_t>(static_cast<std::uint64_t>(procs) *
                                  trace.cycles.size());
    expected_busy += totals.serial - costs.constant_tests *
                                         static_cast<std::int64_t>(
                                             trace.cycles.size());
    expected_busy +=
        costs.send_overhead * static_cast<std::int64_t>(result.messages);
    expected_busy +=
        costs.recv_overhead * static_cast<std::int64_t>(remote_children);
    SimTime observed_busy{};
    for (const CycleMetrics& cycle : result.cycles) {
      for (const ProcCycleMetrics& proc : cycle.procs) {
        observed_busy += proc.busy;
      }
    }
    checker.check("busy-conservation", observed_busy != expected_busy,
                  ns_pair(expected_busy.nanos(), observed_busy.nanos()));

    if (zero_message_costs(costs) && costs.resolve_cost == SimTime{} &&
        config.termination == TerminationModel::None) {
      // One processor at zero overhead IS the sequential machine.
      if (procs == 1) {
        checker.check("serial-sum", result.makespan != totals.serial,
                      ns_pair(totals.serial.nanos(), result.makespan.nanos()));
      }
      // Parallelism at zero cost never loses to serial...
      checker.check(
          "zero-overhead-no-slowdown", result.makespan > totals.serial,
          "makespan " + std::to_string(result.makespan.nanos()) +
              " ns exceeds serial sum " + std::to_string(totals.serial.nanos()) +
              " ns");
      // ...and never beats work conservation (speedup <= P).
      checker.check(
          "work-conservation",
          result.makespan.nanos() * static_cast<std::int64_t>(procs) <
              totals.serial.nanos(),
          std::to_string(procs) + " x makespan " +
              std::to_string(result.makespan.nanos()) +
              " ns below serial sum " + std::to_string(totals.serial.nanos()) +
              " ns");
    }
  }

  return report;
}

InvariantReport check_cross_run_invariants(const trace::Trace& trace,
                                           const std::vector<ObservedRun>& runs,
                                           obs::Registry* metrics) {
  InvariantReport report;
  Checker checker(report, metrics);
  const TraceTotals totals = totals_of(trace, CostModel{});

  // Token conservation is a property of the trace, not the machine size:
  // merged-mapping runs with the same charging flag all see the same
  // messages + local total, whatever the processor count or assignment.
  for (const bool charged : {false, true}) {
    const std::uint64_t expected =
        totals.children + (charged ? totals.instantiations : 0);
    for (const ObservedRun& run : runs) {
      if (!plain_merged(run.config) ||
          run.config.charge_instantiation_messages != charged) {
        continue;
      }
      const std::uint64_t observed =
          run.result->messages + run.result->local_deliveries;
      checker.check("cross-run-token-conservation", observed != expected,
                    std::to_string(run.config.match_processors) +
                        " processors: messages + local = " +
                        std::to_string(observed) + ", expected " +
                        std::to_string(expected));
    }
  }

  // Event conservation: which kernel events get posted is decided by the
  // routing inputs alone — trace structure, mapping, processor counts and
  // the instantiation-charging flag (plus the shared assignment) — so two
  // runs that agree on those must dispatch the same number of events no
  // matter how their cost models differ.  This pins the overhead grid
  // down hard: a cost knob that changes the event count leaked into
  // routing decisions.
  const auto same_routing = [](const SimConfig& a, const SimConfig& b) {
    return a.match_processors == b.match_processors &&
           a.mapping == b.mapping &&
           a.constant_test_processors == b.constant_test_processors &&
           a.conflict_set_processors == b.conflict_set_processors &&
           a.charge_instantiation_messages == b.charge_instantiation_messages;
  };
  for (std::size_t i = 0; i < runs.size(); ++i) {
    for (std::size_t j = i + 1; j < runs.size(); ++j) {
      if (!same_routing(runs[i].config, runs[j].config)) continue;
      checker.check(
          "cross-run-event-conservation",
          runs[i].result->events != runs[j].result->events,
          "same routing inputs dispatched " +
              std::to_string(runs[i].result->events) + " vs " +
              std::to_string(runs[j].result->events) + " kernel events at " +
              std::to_string(runs[i].config.match_processors) +
              " processors");
    }
  }

  // Message-cost monotonicity: same machine, component-wise costlier
  // messages, never a shorter makespan.
  const auto same_machine = [](const SimConfig& a, const SimConfig& b) {
    return a.match_processors == b.match_processors &&
           a.mapping == b.mapping &&
           a.constant_test_processors == b.constant_test_processors &&
           a.conflict_set_processors == b.conflict_set_processors &&
           a.conflict_select_cost == b.conflict_select_cost &&
           a.termination == b.termination &&
           a.charge_instantiation_messages == b.charge_instantiation_messages &&
           // Topology changes shift routes, not just costs, so the
           // monotonicity claim only holds within one network.
           a.network == b.network &&
           // Only the message costs may differ; the law says nothing about
           // runs whose compute costs changed too.
           a.costs.constant_tests == b.costs.constant_tests &&
           a.costs.left_token == b.costs.left_token &&
           a.costs.right_token == b.costs.right_token &&
           a.costs.per_successor == b.costs.per_successor &&
           a.costs.hardware_broadcast == b.costs.hardware_broadcast &&
           a.costs.resolve_cost == b.costs.resolve_cost;
  };
  const auto dominates = [](const CostModel& a, const CostModel& b) {
    return a.send_overhead >= b.send_overhead &&
           a.recv_overhead >= b.recv_overhead &&
           a.wire_latency >= b.wire_latency;
  };
  for (std::size_t i = 0; i < runs.size(); ++i) {
    for (std::size_t j = 0; j < runs.size(); ++j) {
      if (i == j || !same_machine(runs[i].config, runs[j].config)) continue;
      if (!dominates(runs[i].config.costs, runs[j].config.costs)) continue;
      checker.check(
          "overhead-monotonicity",
          runs[i].result->makespan < runs[j].result->makespan,
          "costlier messages finished sooner: " +
              ns_pair(runs[j].result->makespan.nanos(),
                      runs[i].result->makespan.nanos()) +
              " at " + std::to_string(runs[i].config.match_processors) +
              " processors");
    }
  }

  // Hop monotonicity: the flat one-hop network is the floor of the
  // topology family.  When a topology run charged the same number of
  // messages at the same per-hop latency as a constant-network run, its
  // total charged wire time cannot be smaller — every route is >= 1 hop.
  for (std::size_t i = 0; i < runs.size(); ++i) {
    for (std::size_t j = 0; j < runs.size(); ++j) {
      const ObservedRun& topo = runs[i];
      const ObservedRun& flat = runs[j];
      if (topo.config.network.kind == NetKind::Constant ||
          flat.config.network.kind != NetKind::Constant) {
        continue;
      }
      if (topo.config.network.free_remote_hop_fault ||
          flat.config.network.free_remote_hop_fault) {
        continue;
      }
      if (topo.result->net.hop_latency != flat.result->net.hop_latency ||
          topo.result->net.messages != flat.result->net.messages) {
        continue;
      }
      checker.check(
          "hop-monotonicity",
          topo.result->net.total_latency < flat.result->net.total_latency,
          topo.config.network.describe() + " charged less wire time than " +
              "the flat network for the same " +
              std::to_string(topo.result->net.messages) + " messages: " +
              ns_pair(flat.result->net.total_latency.nanos(),
                      topo.result->net.total_latency.nanos()));
    }
  }

  return report;
}

}  // namespace mpps::sim
