// Discrete-event simulator of the paper's mappings: a control processor
// plus match processors jointly owning the distributed hash table.
//
// The default configuration is the Section 3.2 variation used for the
// paper's simulations:
//   1. The control processor broadcasts the cycle's WM changes to ALL
//      match processors.
//   2. Every match processor pays receive overhead + constant-test time,
//      then processes the root activations (tokens generated directly from
//      the WM changes) whose buckets it owns, as one coarse-grained unit —
//      no messages are exchanged for these.
//   3. Tokens generated at two-input nodes are left activations; each is
//      sent (send overhead on the producer, wire latency, receive overhead
//      on the consumer) to the processor owning its bucket — unless that
//      bucket is local, in which case it is enqueued for free.
//   4. Completed instantiations are sent to the control processor.
//   5. The cycle ends when all activations and messages have drained
//      (termination detection is not charged by default; see
//      TerminationModel).
//
// Three variations of the base mapping (Sections 3.1/3.2) are selectable:
//   * MappingMode::ProcessorPairs — each hash partition is owned by a
//     processor PAIR: the storing side adds the token while the opposite
//     side searches its bucket and generates successors, in parallel
//     (the paper's micro-tasks).  Message traffic is restricted to the
//     left processor of each pair, which forwards tokens to its partner.
//   * constant_test_processors > 0 — instead of broadcasting WM changes to
//     everyone, a small set of dedicated processors evaluates the
//     partitioned constant tests and ships each root token to its bucket
//     owner as a message (the bottleneck the paper warns about under high
//     communication overheads).
//   * conflict_set_processors > 0 — instantiations go to dedicated
//     conflict-set processors that pre-select their best instantiation and
//     forward only that to the control processor.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/simtime.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/tracer.hpp"
#include "src/sim/assignment.hpp"
#include "src/sim/costs.hpp"
#include "src/sim/network.hpp"
#include "src/trace/record.hpp"

namespace mpps::sim {

enum class MappingMode : std::uint8_t {
  /// Both hash tables of a partition on one processor (the simulated
  /// variation of Section 3.2; the paper's default for 32-node Nectar).
  Merged,
  /// A processor pair per partition (Section 3.1 base mapping): with P
  /// match processors there are P/2 partitions; partition i is served by
  /// processors 2i (left) and 2i+1 (right).
  ProcessorPairs,
};

/// What the simulator charges for detecting the end of the match phase.
/// The paper does not simulate termination detection (Section 4) and
/// names it future work; these models bound the design space.
enum class TerminationModel : std::uint8_t {
  /// Free and instantaneous (the paper's assumption).
  None,
  /// Message-acknowledgement counting (Dijkstra-Scholten style): every
  /// message eventually carries an ack back toward the control processor;
  /// modelled as one extra message cost per message sent, charged to the
  /// cycle tail, plus a final control round.
  AckCounting,
  /// A barrier poll: the control processor polls every match processor
  /// (one request + one reply per processor) after the last activation.
  BarrierPoll,
};

struct SimConfig {
  std::uint32_t match_processors = 8;
  MappingMode mapping = MappingMode::Merged;
  /// 0 ⇒ broadcast to all match processors (step 2 above).  Otherwise the
  /// number of dedicated constant-test processors.
  std::uint32_t constant_test_processors = 0;
  /// 0 ⇒ instantiations go straight to the control processor.
  std::uint32_t conflict_set_processors = 0;
  /// Per-instantiation selection cost on a conflict-set processor.
  SimTime conflict_select_cost{};
  TerminationModel termination = TerminationModel::None;
  CostModel costs;
  /// Interconnection network charged for every remote message (default:
  /// the paper's flat wire — see src/sim/network.hpp for the semantics
  /// and the node numbering).
  NetworkConfig network;
  /// Charge send overhead + latency + receive overhead for instantiation
  /// messages.
  bool charge_instantiation_messages = true;
  /// Observability sinks (not owned; see docs/OBSERVABILITY.md).  Null ⇒
  /// nothing is recorded and the simulated results are bit-for-bit
  /// identical to an uninstrumented run.
  obs::Registry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;

  /// Hash partitions implied by mapping/match_processors.  The bucket
  /// assignment must target [0, partitions()).
  [[nodiscard]] std::uint32_t partitions() const {
    return mapping == MappingMode::ProcessorPairs ? match_processors / 2
                                                  : match_processors;
  }
};

/// Per-processor, per-cycle observations (Fig 5-5 and idle-time analysis).
struct ProcCycleMetrics {
  SimTime busy{};
  std::uint64_t activations = 0;
  std::uint64_t left_activations = 0;
};

struct CycleMetrics {
  SimTime start{};
  SimTime end{};
  std::uint64_t messages = 0;
  std::vector<ProcCycleMetrics> procs;  // match processors only

  [[nodiscard]] SimTime span() const { return end - start; }
};

struct SimResult {
  SimTime makespan{};
  std::uint64_t messages = 0;          // inter-processor + to-control
  std::uint64_t local_deliveries = 0;  // tokens that stayed on-processor
  /// Discrete events the kernel dispatched (task arrivals + completions,
  /// summed over cycles).  A pure function of (trace, mapping, assignment)
  /// — the cost model never changes it — so it doubles as an oracle field
  /// (compared bit-exactly against refsim) and as the denominator-free
  /// throughput unit reported by bench/simkernel_throughput.
  std::uint64_t events = 0;
  SimTime network_busy{};              // sum of charged message latencies
  SimTime termination_overhead{};      // total charged by TerminationModel
  std::vector<CycleMetrics> cycles;
  std::uint32_t match_processors = 1;
  /// Network observations (hop histogram, per-link traffic, contention);
  /// always == network model's view, so `network_busy == net.total_latency`
  /// is an invariant law.
  NetStats net;

  /// Fraction of aggregate link capacity (P links × makespan) in use.
  [[nodiscard]] double network_utilization() const;
  /// Mean over match processors of busy / makespan.
  [[nodiscard]] double avg_processor_utilization() const;
};

/// Runs the trace through the simulated machine.  Deterministic: identical
/// inputs produce identical results.  Throws mpps::RuntimeError when the
/// configuration is inconsistent (odd processor count in pair mode, or an
/// assignment whose processor range differs from config.partitions()).
SimResult simulate(const trace::Trace& trace, const SimConfig& config,
                   const Assignment& assignment);

/// Convenience: simulated time on one match processor with zero
/// message-passing overheads — the paper's speedup baseline.  Always
/// recomputes; prefer `BaselineCache` when the same trace is replayed
/// under many configurations (every sweep does).
SimTime baseline_time(const trace::Trace& trace);

/// Thread-safe memo of `baseline_time`, keyed by a structural fingerprint
/// of the trace, so a sweep simulates the zero-overhead baseline once per
/// trace instead of once per configuration.  Safe across trace copies and
/// reloads: content-identical traces share one entry.  A fingerprint hit
/// is verified against the full canonical encoding of the trace before it
/// is trusted, so hash collisions produce a second entry instead of a
/// silently wrong baseline (and thus wrong speedups everywhere).
class BaselineCache {
 public:
  /// Structural fingerprint function; injectable so tests can force
  /// collisions (e.g. a constant) and exercise the verification path.
  using Fingerprint = std::uint64_t (*)(const trace::Trace&);

  BaselineCache() = default;
  explicit BaselineCache(Fingerprint fingerprint);

  /// Cached baseline of `trace`; simulates and remembers it on first use.
  SimTime baseline(const trace::Trace& trace);

  /// Entries currently cached (for tests and capacity reasoning).
  /// Colliding traces count individually.
  [[nodiscard]] std::size_t size() const;

  /// The process-wide instance used by `speedup` and the sweep engine.
  static BaselineCache& shared();

  /// The default fingerprint: FNV-1a over the canonical encoding.
  static std::uint64_t fingerprint(const trace::Trace& trace);

 private:
  struct Entry {
    std::vector<std::uint64_t> structure;  // canonical field encoding
    SimTime baseline{};
  };

  mutable std::mutex mu_;
  Fingerprint fingerprint_ = &BaselineCache::fingerprint;
  std::unordered_map<std::uint64_t, std::vector<Entry>> entries_;
};

/// Speedup of `config`/`assignment` relative to the serial zero-overhead
/// baseline (thin wrapper over `BaselineCache::shared()` + `simulate`).
double speedup(const trace::Trace& trace, const SimConfig& config,
               const Assignment& assignment);

}  // namespace mpps::sim
