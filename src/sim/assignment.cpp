#include "src/sim/assignment.hpp"

#include <algorithm>
#include <numeric>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace mpps::sim {

namespace {
void require_procs(std::uint32_t num_procs) {
  if (num_procs == 0) {
    throw RuntimeError("bucket assignment requires at least one processor");
  }
}

/// Every map entry must name a processor in [0, num_procs): the simulator
/// indexes its processor table with these values, so an out-of-range entry
/// would read past the end of that table.
void require_in_range(const std::vector<std::uint32_t>& map,
                      std::size_t cycle, std::uint32_t num_procs) {
  for (std::size_t bucket = 0; bucket < map.size(); ++bucket) {
    if (map[bucket] >= num_procs) {
      throw RuntimeError(
          "bucket assignment map for cycle " + std::to_string(cycle) +
          " sends bucket " + std::to_string(bucket) + " to processor " +
          std::to_string(map[bucket]) + ", but only " +
          std::to_string(num_procs) + " processors exist");
    }
  }
}
}  // namespace

Assignment Assignment::round_robin(std::uint32_t num_buckets,
                                   std::uint32_t num_procs) {
  require_procs(num_procs);
  std::vector<std::uint32_t> map(num_buckets);
  for (std::uint32_t b = 0; b < num_buckets; ++b) map[b] = b % num_procs;
  return fixed(std::move(map), num_procs);
}

Assignment Assignment::random(std::uint32_t num_buckets,
                              std::uint32_t num_procs, std::uint64_t seed) {
  require_procs(num_procs);
  Rng rng(seed);
  std::vector<std::uint32_t> map(num_buckets);
  for (std::uint32_t b = 0; b < num_buckets; ++b) {
    map[b] = static_cast<std::uint32_t>(rng.below(num_procs));
  }
  return fixed(std::move(map), num_procs);
}

Assignment Assignment::per_cycle(std::vector<std::vector<std::uint32_t>> maps,
                                 std::uint32_t num_procs) {
  require_procs(num_procs);
  for (std::size_t cycle = 0; cycle < maps.size(); ++cycle) {
    require_in_range(maps[cycle], cycle, num_procs);
  }
  Assignment a;
  a.maps_ = std::move(maps);
  a.num_procs_ = num_procs;
  return a;
}

Assignment Assignment::fixed(std::vector<std::uint32_t> map,
                             std::uint32_t num_procs) {
  require_procs(num_procs);
  require_in_range(map, 0, num_procs);
  Assignment a;
  a.maps_.push_back(std::move(map));
  a.num_procs_ = num_procs;
  return a;
}

namespace {

/// Per-bucket processing cost (simulated nanoseconds) of one trace cycle:
/// token add/delete plus successor/instantiation generation, attributed to
/// the bucket where the activation runs.
std::vector<std::uint64_t> cycle_bucket_costs(const trace::Trace& trace,
                                              std::size_t cycle,
                                              const CostModel& costs) {
  std::vector<std::uint64_t> out(trace.num_buckets, 0);
  for (const auto& act : trace.cycles[cycle].activations) {
    std::uint64_t cost = static_cast<std::uint64_t>(
        costs.token_cost(act.side == trace::Side::Left).nanos());
    cost += static_cast<std::uint64_t>(costs.per_successor.nanos()) *
            (act.successors + act.instantiations);
    out[act.bucket] += cost;
  }
  return out;
}

}  // namespace

Assignment Assignment::greedy(const trace::Trace& trace,
                              std::uint32_t num_procs,
                              const CostModel& costs) {
  require_procs(num_procs);
  std::vector<std::vector<std::uint32_t>> maps;
  maps.reserve(trace.cycles.size());
  for (std::size_t c = 0; c < trace.cycles.size(); ++c) {
    const std::vector<std::uint64_t> weight =
        cycle_bucket_costs(trace, c, costs);
    std::vector<std::uint32_t> order(trace.num_buckets);
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return weight[a] > weight[b];
                     });
    std::vector<std::uint64_t> load(num_procs, 0);
    std::vector<std::uint32_t> map(trace.num_buckets, 0);
    std::uint32_t rr = 0;
    for (std::uint32_t bucket : order) {
      if (weight[bucket] == 0) {
        map[bucket] = rr++ % num_procs;
        continue;
      }
      const auto min_it = std::min_element(load.begin(), load.end());
      const auto proc =
          static_cast<std::uint32_t>(std::distance(load.begin(), min_it));
      map[bucket] = proc;
      load[proc] += weight[bucket];
    }
    maps.push_back(std::move(map));
  }
  return per_cycle(std::move(maps), num_procs);
}

}  // namespace mpps::sim
