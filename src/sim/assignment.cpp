#include "src/sim/assignment.hpp"

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace mpps::sim {

namespace {
void require_procs(std::uint32_t num_procs) {
  if (num_procs == 0) {
    throw RuntimeError("bucket assignment requires at least one processor");
  }
}
}  // namespace

Assignment Assignment::round_robin(std::uint32_t num_buckets,
                                   std::uint32_t num_procs) {
  require_procs(num_procs);
  std::vector<std::uint32_t> map(num_buckets);
  for (std::uint32_t b = 0; b < num_buckets; ++b) map[b] = b % num_procs;
  return fixed(std::move(map), num_procs);
}

Assignment Assignment::random(std::uint32_t num_buckets,
                              std::uint32_t num_procs, std::uint64_t seed) {
  require_procs(num_procs);
  Rng rng(seed);
  std::vector<std::uint32_t> map(num_buckets);
  for (std::uint32_t b = 0; b < num_buckets; ++b) {
    map[b] = static_cast<std::uint32_t>(rng.below(num_procs));
  }
  return fixed(std::move(map), num_procs);
}

Assignment Assignment::per_cycle(std::vector<std::vector<std::uint32_t>> maps,
                                 std::uint32_t num_procs) {
  Assignment a;
  a.maps_ = std::move(maps);
  a.num_procs_ = num_procs;
  return a;
}

Assignment Assignment::fixed(std::vector<std::uint32_t> map,
                             std::uint32_t num_procs) {
  Assignment a;
  a.maps_.push_back(std::move(map));
  a.num_procs_ = num_procs;
  return a;
}

}  // namespace mpps::sim
