#include "src/sim/sharedbus.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "src/sim/simulator.hpp"

namespace mpps::sim {
namespace {

using trace::Side;
using trace::TraceActivation;

struct ReadyTask {
  SimTime ready{};
  std::uint64_t seq = 0;
  std::size_t act_index = 0;

  friend bool operator<(const ReadyTask& a, const ReadyTask& b) {
    if (a.ready != b.ready) return a.ready > b.ready;  // min-heap
    return a.seq > b.seq;
  }
};

}  // namespace

SharedBusResult simulate_shared_bus(const trace::Trace& trace,
                                    const SharedBusConfig& config) {
  SharedBusResult result;
  const CostModel& costs = config.costs;
  SimTime clock{};

  for (const auto& cycle : trace.cycles) {
    // Index children per activation, preserving generation order.
    std::unordered_map<std::uint64_t, std::size_t> by_id;
    std::vector<std::vector<std::size_t>> children(cycle.activations.size());
    std::vector<std::size_t> roots;
    for (std::size_t i = 0; i < cycle.activations.size(); ++i) {
      const auto& act = cycle.activations[i];
      by_id.emplace(act.id.value(), i);
      if (act.parent.valid()) {
        children[by_id.at(act.parent.value())].push_back(i);
      } else {
        roots.push_back(i);
      }
    }

    std::priority_queue<ReadyTask> ready;
    std::uint64_t seq = 0;
    // The constant tests run once over the shared WM changes at cycle
    // start (they parallelize trivially, matching the MPC model's 30 us
    // wall-clock charge).
    const SimTime t0 = clock + costs.constant_tests;
    for (std::size_t root : roots) {
      ready.push(ReadyTask{t0, seq++, root});
    }

    std::vector<SimTime> proc_free(config.processors, clock);
    std::unordered_map<std::uint32_t, SimTime> bucket_free;
    SimTime queue_free = clock;

    while (!ready.empty()) {
      const ReadyTask task = ready.top();
      ready.pop();
      const TraceActivation& act = cycle.activations[task.act_index];
      ++result.tasks;

      // Earliest-free processor takes the task.
      auto proc_it = std::min_element(proc_free.begin(), proc_free.end());
      SimTime start = std::max(task.ready, *proc_it);
      // Exclusive queue pop.
      start = std::max(start, queue_free);
      queue_free = start + config.queue_access;
      result.queue_busy += config.queue_access;
      start = queue_free;
      // Exclusive hash-bucket access.
      if (auto it = bucket_free.find(act.bucket); it != bucket_free.end()) {
        if (it->second > start) {
          result.bucket_wait += it->second - start;
          start = it->second;
        }
      }

      SimTime cursor = start + costs.token_cost(act.side == Side::Left);
      for (std::size_t child : children[task.act_index]) {
        cursor += costs.per_successor;
        // Pushing the new token onto the shared queue.
        cursor += config.queue_access;
        ready.push(ReadyTask{cursor, seq++, child});
      }
      for (std::uint32_t i = 0; i < act.instantiations; ++i) {
        // Conflict-set insertion behind its own lock.
        cursor += costs.per_successor + config.queue_access;
      }
      bucket_free[act.bucket] = cursor;
      *proc_it = cursor;
    }

    SimTime end = std::max(clock + costs.constant_tests, queue_free);
    for (SimTime t : proc_free) end = std::max(end, t);
    end += costs.resolve_cost;
    result.cycle_spans.push_back(end - clock);
    clock = end;
  }
  result.makespan = clock;
  return result;
}

double shared_bus_speedup(const trace::Trace& trace,
                          const SharedBusConfig& config) {
  const SimTime base = baseline_time(trace);
  const SimTime t = simulate_shared_bus(trace, config).makespan;
  if (t.nanos() == 0) return 0.0;
  return static_cast<double>(base.nanos()) / static_cast<double>(t.nanos());
}

}  // namespace mpps::sim
