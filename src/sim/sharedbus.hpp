// The shared-memory ("shared-bus") baseline the paper compares against:
// its own parallel OPS5 on the Encore Multimax (Gupta et al., ICPP'88 /
// IJPP'89).  Match processors share centralized task queues and the global
// hash tables live in shared memory:
//
//  * there is no message passing — a generated token is pushed onto the
//    shared task queue and any processor may pick it up;
//  * popping/pushing the centralized queue requires exclusive access (the
//    lock/bus overhead), the "potential bottleneck" of Section 5.2.2;
//  * a hash bucket must be accessed exclusively, so tokens hashing to the
//    same bucket serialize exactly as in the distributed mapping — the
//    paper's point that the Tourney cross-product hurts both designs.
//
// The same activation-trace input and node-activation cost model are used,
// so MPC and shared-bus runs are directly comparable (both speedups are
// computed against the identical serial baseline).
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/simtime.hpp"
#include "src/sim/costs.hpp"
#include "src/trace/record.hpp"

namespace mpps::sim {

struct SharedBusConfig {
  std::uint32_t processors = 8;
  /// Exclusive task-queue access per pop (lock acquire + bus transaction).
  /// Pushes are charged to the producing processor at the same rate.
  SimTime queue_access = SimTime::us(3);
  /// Node-activation costs (constant tests / left / right / successor);
  /// the message-passing fields are ignored.
  CostModel costs;
};

struct SharedBusResult {
  SimTime makespan{};
  std::uint64_t tasks = 0;
  /// Total exclusive queue-pop time — when this approaches the makespan,
  /// the centralized queue is the bottleneck.
  SimTime queue_busy{};
  /// Total time tasks spent waiting on a busy hash bucket.
  SimTime bucket_wait{};
  std::vector<SimTime> cycle_spans;

  [[nodiscard]] double queue_utilization() const {
    if (makespan.nanos() == 0) return 0.0;
    return static_cast<double>(queue_busy.nanos()) /
           static_cast<double>(makespan.nanos());
  }
};

/// Replays the trace on the simulated shared-bus machine.  Deterministic.
SharedBusResult simulate_shared_bus(const trace::Trace& trace,
                                    const SharedBusConfig& config);

/// Speedup against the same serial baseline as the MPC simulator.
double shared_bus_speedup(const trace::Trace& trace,
                          const SharedBusConfig& config);

}  // namespace mpps::sim
