// The scheduler seam: schedule-controlled execution of the parallel match
// engine.  When `ParallelOptions::schedule` is set the engine spawns no
// worker threads and takes no barriers; instead the control thread runs
// every worker's rounds cooperatively and asks the ScheduleControl, at
// each point where a real scheduler would have freedom, which of the
// admissible orders to take:
//
//   * `drain_order`   — the order a worker's mailbox slots are drained
//                       (one FIFO stream per producing worker);
//   * `order_round`   — the processing order of one worker's incoming
//                       round, replacing the free-running engine's
//                       (sender, seq) sort;
//   * `order_merge`   — the order one round's conflict-set deltas are
//                       applied during the deterministic merge.
//
// The engine computes the same result for any order the controller picks
// that respects per-sender FIFO — that is exactly the claim the `src/mc`
// model checker explores and asserts.  Orders that break FIFO (stale
// deletes overtaking their adds) genuinely change the outcome; the
// checker's planted faults use that to prove it can see real bugs.
//
// Every returned order must be a permutation of the indices the engine
// passed in; anything else raises mpps::RuntimeError.  Controlled mode is
// single-threaded, deterministic, and incompatible with the wall-clock
// profiler (the engine rejects the combination at construction).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mpps::pmatch {

/// One schedulable operation, as the seam describes it to the controller.
/// `bucket` is the dependence unit: operations on distinct buckets commute
/// (disjoint per-bucket state), so a partial-order-reducing controller
/// only permutes within a bucket.  For conflict-set deltas the field
/// carries the instantiation's dependence key instead (same key = same
/// (production, token) = the +/- pair that must stay ordered).  `op_hash`
/// identifies the operation's full content: two ops with equal hashes are
/// interchangeable, so exploring both orders is redundant.
struct ScheduledOp {
  std::uint32_t sender = 0;   // emitting worker
  std::uint64_t seq = 0;      // emission index within (sender, round)
  std::uint32_t bucket = 0;   // dependence class (see above)
  std::uint64_t op_hash = 0;  // content identity
};

class ScheduleControl {
 public:
  virtual ~ScheduleControl() = default;

  /// A new BSP phase is starting.  `phase_index` counts phases run by the
  /// engine so far.
  virtual void begin_phase(std::uint64_t phase_index) { (void)phase_index; }

  /// Order in which `worker` drains its mailbox's producer slots when
  /// entering `round`.  Must fill `order` with a permutation of
  /// [0, producers).  The default is slot-major (the free engine's order);
  /// any order is admissible because each slot is one sender's FIFO
  /// stream and `order_round` chooses the interleaving anyway.
  virtual void drain_order(std::uint32_t worker, std::uint32_t round,
                           std::uint32_t producers,
                           std::vector<std::uint32_t>& order) {
    (void)worker;
    (void)round;
    order.clear();
    order.reserve(producers);
    for (std::uint32_t p = 0; p < producers; ++p) order.push_back(p);
  }

  /// Processing order for `worker`'s round `round` (round >= 1; round 0 is
  /// the constant-test scan, where the real machine has no scheduler
  /// freedom).  `ops[i]` describes the item at index i of the incoming
  /// vector; within one sender, items appear in emission (seq) order.
  /// Must fill `order` with a permutation of [0, ops.size()).
  virtual void order_round(std::uint32_t worker, std::uint32_t round,
                           std::span<const ScheduledOp> ops,
                           std::vector<std::uint32_t>& order) = 0;

  /// Application order for the conflict-set deltas of merge round `round`.
  /// `ops[i].sender` is the worker that emitted delta i; `ops[i].bucket`
  /// is the instantiation dependence key.  Within one worker, deltas
  /// appear in emission order.  Must fill `order` with a permutation of
  /// [0, ops.size()).
  virtual void order_merge(std::uint32_t round,
                           std::span<const ScheduledOp> ops,
                           std::vector<std::uint32_t>& order) = 0;
};

}  // namespace mpps::pmatch
