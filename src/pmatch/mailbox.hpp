// Bounded MPSC mailbox: the "message" channel between match processors.
// Any worker may push (multi-producer); only the owning worker drains
// (single consumer).  The capacity is a backpressure threshold, not a
// blocking bound: the BSP round structure of the parallel engine already
// bounds in-flight traffic to one round's emissions, so instead of
// blocking producers (which deadlocks against the round barrier) a push
// beyond capacity is admitted and counted as an overflow.  Overflow and
// peak-depth counts surface through the obs registry so a mailbox sized
// too small for a workload is visible rather than fatal.
//
// Internally the box is sharded into per-producer slots so two producers
// pushing into the same mailbox never contend on one mutex — the BSP hot
// path is push-only during a round (the consumer drains at the barrier),
// so the only cross-thread state is an atomic total depth.  Because
// pushes are the only mutation during a round and the depth counter is a
// plain sum, the overflow count and peak depth are independent of thread
// interleaving: stats are bit-identical run to run for a fixed workload.
//
// Each slot pre-reserves `capacity / producers` entries (its share of the
// backpressure threshold) and, after a drain that left it oversized,
// shrinks its buffer back to that reserve so one traffic spike does not
// pin peak memory for the engine's lifetime.  Shrinks are counted in
// `Stats::shrinks`.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "src/common/error.hpp"

namespace mpps::pmatch {

template <typename T>
class Mailbox {
 public:
  struct Stats {
    std::uint64_t pushes = 0;
    std::uint64_t overflows = 0;  // pushes that found the box at capacity
    std::uint64_t max_depth = 0;  // peak total depth ever observed
    std::uint64_t shrinks = 0;    // oversized buffers released after drain
  };

  /// `capacity` is the backpressure threshold (must be positive: a zero
  /// capacity is a configuration error, not a request for a tiny box);
  /// `producers` shards the internal buffer (one slot per producer).
  explicit Mailbox(std::size_t capacity, std::uint32_t producers = 1) {
    if (capacity == 0) {
      throw RuntimeError("Mailbox: capacity must be positive");
    }
    if (producers == 0) {
      throw RuntimeError("Mailbox: producer count must be positive");
    }
    capacity_ = capacity;
    slot_reserve_ = (capacity + producers - 1) / producers;
    slots_.reserve(producers);
    for (std::uint32_t p = 0; p < producers; ++p) {
      slots_.push_back(std::make_unique<Slot>());
      slots_.back()->items.reserve(slot_reserve_);
    }
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint32_t producers() const {
    return static_cast<std::uint32_t>(slots_.size());
  }

  /// Never blocks; see the header comment for the overflow contract.
  /// `producer` selects the slot — distinct producers never share one.
  void push(std::uint32_t producer, T item) {
    const std::size_t depth =
        depth_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (depth > capacity_) overflows_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t prev = max_depth_.load(std::memory_order_relaxed);
    while (depth > prev &&
           !max_depth_.compare_exchange_weak(prev, depth,
                                             std::memory_order_relaxed)) {
    }
    Slot& slot = *slots_[producer % slots_.size()];
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.items.push_back(std::move(item));
    ++slot.pushes;
  }

  /// Moves every queued item onto the back of `out` (slot-major, FIFO
  /// within a slot — the engine re-sorts by (sender, seq) anyway) and
  /// returns the number drained.  Consumer-side only.  A slot whose
  /// buffer grew past twice its reserve during a spike is shrunk back to
  /// the reserve here.
  std::size_t drain_into(std::vector<T>& out) {
    std::size_t n = 0;
    for (auto& slot_ptr : slots_) n += drain_slot(*slot_ptr, out);
    depth_.store(0, std::memory_order_relaxed);
    return n;
  }

  /// Drain with a caller-chosen slot order (the schedule-controlled
  /// engine's seam; see src/pmatch/schedule.hpp).  `slot_order` must be a
  /// permutation of [0, producers()) — anything else raises RuntimeError.
  /// FIFO within each slot and the shrink accounting are unchanged: only
  /// the slot visiting order moves.
  std::size_t drain_into(std::vector<T>& out,
                         std::span<const std::uint32_t> slot_order) {
    if (slot_order.size() != slots_.size()) {
      throw RuntimeError("Mailbox: slot order must cover every producer");
    }
    std::vector<char> seen(slots_.size(), 0);
    for (std::uint32_t s : slot_order) {
      if (s >= slots_.size() || seen[s] != 0) {
        throw RuntimeError("Mailbox: slot order is not a permutation");
      }
      seen[s] = 1;
    }
    std::size_t n = 0;
    for (std::uint32_t s : slot_order) n += drain_slot(*slots_[s], out);
    depth_.store(0, std::memory_order_relaxed);
    return n;
  }

  [[nodiscard]] Stats stats() const {
    Stats s;
    for (const auto& slot_ptr : slots_) {
      const Slot& slot = *slot_ptr;
      std::lock_guard<std::mutex> lock(slot.mu);
      s.pushes += slot.pushes;
      s.shrinks += slot.shrinks;
    }
    s.overflows = overflows_.load(std::memory_order_relaxed);
    s.max_depth = max_depth_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Slot {
    mutable std::mutex mu;
    std::vector<T> items;
    std::uint64_t pushes = 0;
    std::uint64_t shrinks = 0;
  };

  std::size_t drain_slot(Slot& slot, std::vector<T>& out) {
    std::lock_guard<std::mutex> lock(slot.mu);
    const std::size_t n = slot.items.size();
    for (T& item : slot.items) out.push_back(std::move(item));
    slot.items.clear();
    if (slot.items.capacity() > 2 * slot_reserve_) {
      slot.items.shrink_to_fit();
      slot.items.reserve(slot_reserve_);
      ++slot.shrinks;
    }
    return n;
  }

  std::size_t capacity_ = 0;
  std::size_t slot_reserve_ = 0;
  std::atomic<std::size_t> depth_{0};
  std::atomic<std::uint64_t> max_depth_{0};
  std::atomic<std::uint64_t> overflows_{0};
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace mpps::pmatch
