// Bounded MPSC mailbox: the "message" channel between match processors.
// Any worker may push (multi-producer); only the owning worker drains
// (single consumer).  The capacity is a backpressure threshold, not a
// blocking bound: the BSP round structure of the parallel engine already
// bounds in-flight traffic to one round's emissions, so instead of
// blocking producers (which deadlocks against the round barrier) a push
// beyond capacity is admitted and counted as an overflow.  Overflow and
// peak-depth counts surface through the obs registry so a mailbox sized
// too small for a workload is visible rather than fatal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace mpps::pmatch {

template <typename T>
class Mailbox {
 public:
  struct Stats {
    std::uint64_t pushes = 0;
    std::uint64_t overflows = 0;    // pushes that found the box at capacity
    std::uint64_t max_depth = 0;    // peak depth ever observed
  };

  explicit Mailbox(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Never blocks; see the header comment for the overflow contract.
  void push(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.size() >= capacity_) ++stats_.overflows;
    items_.push_back(std::move(item));
    ++stats_.pushes;
    if (items_.size() > stats_.max_depth) stats_.max_depth = items_.size();
  }

  /// Moves every queued item onto the back of `out`; returns the number
  /// drained.  Consumer-side only.
  std::size_t drain_into(std::vector<T>& out) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t n = items_.size();
    for (T& item : items_) out.push_back(std::move(item));
    items_.clear();
    return n;
  }

  [[nodiscard]] Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<T> items_;
  Stats stats_;
};

}  // namespace mpps::pmatch
