#include "src/pmatch/engine.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "src/common/error.hpp"

namespace mpps::pmatch {

using rete::ActivationRecord;
using rete::AlphaNode;
using rete::AlphaSuccessor;
using rete::BetaNode;
using rete::BetaSuccessor;
using rete::HashedMemory;
using rete::JoinTest;
using rete::Side;
using rete::Tag;
using rete::Token;
using rete::Value;

namespace {

std::uint32_t resolve_threads(const ParallelOptions& options) {
  return options.threads == 0 ? 1 : options.threads;
}

std::uint32_t resolve_buckets(const ParallelOptions& options) {
  if (options.assignment.has_value()) {
    return options.assignment->num_buckets();
  }
  return options.num_buckets == 0 ? 256 : options.num_buckets;
}

sim::Assignment resolve_assignment(const ParallelOptions& options,
                                   std::uint32_t threads,
                                   std::uint32_t num_buckets) {
  if (options.assignment.has_value()) {
    if (options.assignment->num_buckets() == 0) {
      throw RuntimeError("ParallelEngine: assignment has no buckets");
    }
    if (options.assignment->num_procs() != threads) {
      throw RuntimeError(
          "ParallelEngine: assignment maps " +
          std::to_string(options.assignment->num_procs()) +
          " processors but the engine runs " + std::to_string(threads) +
          " threads");
    }
    return *options.assignment;
  }
  if (options.partition == ParallelOptions::Partition::Random) {
    return sim::Assignment::random(num_buckets, threads, options.seed);
  }
  return sim::Assignment::round_robin(num_buckets, threads);
}

std::uint64_t ns_between(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) {
  return to <= from ? 0
                    : static_cast<std::uint64_t>(
                          std::chrono::duration_cast<std::chrono::nanoseconds>(
                              to - from)
                              .count());
}

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ (v & 0xFF)) * kFnvPrime;
    v >>= 8;
  }
  return h;
}

/// A controller-returned order must be a permutation of [0, n).
void require_permutation(std::span<const std::uint32_t> order, std::size_t n,
                         const char* hook) {
  if (order.size() != n) {
    throw RuntimeError(std::string("ParallelEngine: ") + hook +
                       " returned " + std::to_string(order.size()) +
                       " indices for " + std::to_string(n) + " operations");
  }
  std::vector<char> seen(n, 0);
  for (std::uint32_t idx : order) {
    if (idx >= n || seen[idx] != 0) {
      throw RuntimeError(std::string("ParallelEngine: ") + hook +
                         " returned an invalid permutation");
    }
    seen[idx] = 1;
  }
}

template <typename T>
void reorder_by(std::vector<T>& items,
                std::span<const std::uint32_t> order) {
  std::vector<T> tmp;
  tmp.reserve(items.size());
  for (std::uint32_t idx : order) tmp.push_back(std::move(items[idx]));
  items.swap(tmp);
}

}  // namespace

ParallelEngine::ParallelEngine(const rete::Network& net,
                               ParallelOptions options)
    : net_(net),
      options_(options),
      threads_(resolve_threads(options)),
      num_buckets_(resolve_buckets(options)),
      assignment_(resolve_assignment(options, threads_, num_buckets_)),
      owner_map_(assignment_.map_for(0)),
      conflict_([&net](ProductionId pid) {
        return net.production(pid).specificity();
      }),
      round_barrier_(static_cast<std::ptrdiff_t>(threads_)),
      exchange_barrier_(static_cast<std::ptrdiff_t>(threads_),
                        ExchangeCompletion{this}) {
  if (options_.mailbox_capacity == 0) {
    throw RuntimeError("ParallelEngine: mailbox_capacity must be positive");
  }
  if (options_.schedule != nullptr && options_.profiler != nullptr) {
    throw RuntimeError(
        "ParallelEngine: schedule-controlled mode is single-threaded and "
        "cooperative; the wall-clock profiler would attribute nothing "
        "meaningful (drop one of schedule/profiler)");
  }
  workers_.reserve(threads_);
  for (std::uint32_t i = 0; i < threads_; ++i) {
    workers_.push_back(std::make_unique<Worker>(
        i, num_buckets_, options_.mailbox_capacity, threads_));
  }
  if (options_.profiler != nullptr) {
    options_.profiler->attach(threads_, num_buckets_);
    for (std::uint32_t i = 0; i < threads_; ++i) {
      workers_[i]->lane = options_.profiler->lane(i);
    }
    control_lane_ = options_.profiler->control_lane();
  }
  flushed_workers_.resize(threads_);
  if (options_.metrics != nullptr) {
    obs::Registry& reg = *options_.metrics;
    instr_.left = &reg.counter("rete.activations", {{"side", "left"}});
    instr_.right = &reg.counter("rete.activations", {{"side", "right"}});
    instr_.tokens = &reg.counter("rete.tokens_generated");
    instr_.comparisons = &reg.counter("rete.comparisons");
    instr_.stale = &reg.counter("rete.stale_deletes");
    instr_.live_tokens = &reg.gauge("rete.live_tokens");
    instr_.messages = &reg.counter("pmatch.messages");
    instr_.local = &reg.counter("pmatch.local_deliveries");
    instr_.rounds = &reg.counter("pmatch.rounds");
    instr_.phases = &reg.counter("pmatch.phases");
    instr_.changes = &reg.counter("pmatch.changes");
    instr_.overflows = &reg.counter("pmatch.mailbox_overflows");
    instr_.mailbox_depth = &reg.histogram(
        "pmatch.mailbox_depth", obs::Histogram::exponential_bounds(1, 2.0, 12));
    instr_.busy.reserve(threads_);
    instr_.idle.reserve(threads_);
    for (std::uint32_t i = 0; i < threads_; ++i) {
      instr_.busy.push_back(&reg.counter("pmatch.worker_busy_ns",
                                         {{"worker", std::to_string(i)}}));
      instr_.idle.push_back(&reg.counter("pmatch.worker_idle_ns",
                                         {{"worker", std::to_string(i)}}));
    }
  }
  if (options_.schedule == nullptr) {
    for (auto& worker : workers_) {
      Worker* w = worker.get();
      w->thread = std::thread([this, w] { worker_main(*w); });
    }
  }
}

ParallelEngine::~ParallelEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void ParallelEngine::worker_main(Worker& w) {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || phase_gen_ > seen; });
      if (stop_) return;
      seen = phase_gen_;
    }
    run_worker_phase(w);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

void ParallelEngine::run_worker_phase(Worker& w) {
  using Clock = std::chrono::steady_clock;
  obs::ProfLane* const lane = w.lane;
  const auto phase_start = Clock::now();
  std::uint64_t idle_ns = 0;
  w.records.clear();
  w.deltas.clear();
  w.drain_depths.clear();
  recycle_items(w, w.current);
  recycle_items(w, w.next);
  recycle_items(w, w.self_next);
  w.provisional_counter = 0;
  w.round = 0;
  try {
    scan_roots(w);
  } catch (...) {
    w.error = std::current_exception();
    w.current.clear();
  }
  // When profiling, every clock reading both ends one span and starts the
  // next so the category spans tile the phase wall (the unattributed
  // remainder is only loop glue).  When not profiling this loop takes
  // exactly the same four clock readings per round it always has.
  auto seg_start = phase_start;
  auto phase_end = phase_start;
  while (true) {
    w.emit_seq = 0;
    w.prof_enqueue_ns = 0;
    if (w.error == nullptr) {
      try {
        for (const WorkItem& item : w.current) process_item(w, item);
      } catch (...) {
        w.error = std::current_exception();
      }
    }
    auto wait_start = Clock::now();
    if (lane != nullptr) {
      lane->span(obs::ProfCategory::Match, w.round, lane->stamp(seg_start),
                 lane->stamp(wait_start), w.prof_enqueue_ns);
    }
    round_barrier_.arrive_and_wait();
    auto barrier_end = Clock::now();
    idle_ns += ns_between(wait_start, barrier_end);
    if (lane != nullptr) {
      lane->span(obs::ProfCategory::BarrierWait, w.round,
                 lane->stamp(wait_start), lane->stamp(barrier_end));
    }

    recycle_items(w, w.next);
    const std::size_t drained = w.mailbox.drain_into(w.next);
    w.drain_depths.push_back(drained);
    auto drain_end = barrier_end;
    if (lane != nullptr) {
      drain_end = Clock::now();
      lane->span(obs::ProfCategory::MailboxDequeue, w.round,
                 lane->stamp(barrier_end), lane->stamp(drain_end), drained);
    }
    for (WorkItem& item : w.self_next) w.next.push_back(std::move(item));
    w.self_next.clear();
    std::sort(w.next.begin(), w.next.end(),
              [](const WorkItem& a, const WorkItem& b) {
                return a.sender != b.sender ? a.sender < b.sender
                                            : a.seq < b.seq;
              });
    pending_total_.fetch_add(w.next.size(), std::memory_order_relaxed);

    wait_start = Clock::now();
    if (lane != nullptr) {
      lane->span(obs::ProfCategory::RoundMerge, w.round,
                 lane->stamp(drain_end), lane->stamp(wait_start),
                 w.next.size());
    }
    exchange_barrier_.arrive_and_wait();
    barrier_end = Clock::now();
    idle_ns += ns_between(wait_start, barrier_end);
    if (lane != nullptr) {
      lane->span(obs::ProfCategory::BarrierWait, w.round,
                 lane->stamp(wait_start), lane->stamp(barrier_end));
    }
    if (phase_done_) {
      phase_end = barrier_end;
      break;
    }
    std::swap(w.current, w.next);
    ++w.round;
    seg_start = barrier_end;
  }
  const std::uint64_t phase_ns = ns_between(phase_start, phase_end);
  w.wstats.idle_ns += idle_ns;
  w.wstats.busy_ns += phase_ns > idle_ns ? phase_ns - idle_ns : 0;
  if (lane != nullptr) {
    lane->phase_span(lane->stamp(phase_start), lane->stamp(phase_end));
  }
}

void ParallelEngine::on_exchange() noexcept {
  phase_done_ = pending_total_.load(std::memory_order_relaxed) == 0;
  pending_total_.store(0, std::memory_order_relaxed);
  ++rounds_executed_;
}

std::uint64_t ParallelEngine::item_hash(const WorkItem& item) {
  std::uint64_t h = kFnvOffset;
  h = fnv_mix(h, item.node.value());
  h = fnv_mix(h, static_cast<std::uint64_t>(item.side));
  h = fnv_mix(h, static_cast<std::uint64_t>(item.tag));
  h = fnv_mix(h, item.wme.value());
  for (WmeId w : item.token.wmes) h = fnv_mix(h, w.value());
  return h;
}

std::uint64_t ParallelEngine::delta_dependence_hash(const ConflictDelta& d) {
  std::uint64_t h = kFnvOffset;
  h = fnv_mix(h, d.pid.value());
  for (WmeId w : d.token.wmes) h = fnv_mix(h, w.value());
  return h;
}

std::uint64_t ParallelEngine::delta_identity_hash(const ConflictDelta& d) {
  return fnv_mix(delta_dependence_hash(d), static_cast<std::uint64_t>(d.tag));
}

void ParallelEngine::run_controlled_phase() {
  // The cooperative mirror of worker_main/run_worker_phase: one loop
  // iteration per BSP round, every worker stepped in index order.  Within
  // a round the workers only touch disjoint per-bucket state (that is the
  // engine's whole ownership story), so stepping them sequentially in any
  // fixed order is equivalent to the threaded execution — the orderings
  // that can matter are exactly the ones delegated to the controller:
  // mailbox slot drains and the incoming item order, which replaces the
  // free-running path's (sender, seq) sort.
  ScheduleControl& sched = *options_.schedule;
  for (auto& wp : workers_) {
    Worker& w = *wp;
    w.records.clear();
    w.deltas.clear();
    w.drain_depths.clear();
    recycle_items(w, w.current);
    recycle_items(w, w.next);
    recycle_items(w, w.self_next);
    w.provisional_counter = 0;
    w.round = 0;
    scan_roots(w);  // round 0 = constant-test scan in change order: the
                    // real machine has no scheduler freedom here
  }
  std::vector<std::uint32_t> slot_order;
  std::vector<std::uint32_t> order;
  std::vector<ScheduledOp> ops;
  while (true) {
    for (auto& wp : workers_) {
      Worker& w = *wp;
      w.emit_seq = 0;
      for (const WorkItem& item : w.current) process_item(w, item);
    }
    ++rounds_executed_;
    std::size_t pending = 0;
    for (auto& wp : workers_) {
      Worker& w = *wp;
      recycle_items(w, w.next);
      sched.drain_order(w.index, w.round, threads_, slot_order);
      require_permutation(slot_order, threads_, "drain_order");
      const std::size_t drained = w.mailbox.drain_into(w.next, slot_order);
      w.drain_depths.push_back(drained);
      for (WorkItem& item : w.self_next) w.next.push_back(std::move(item));
      w.self_next.clear();
      if (!w.next.empty()) {
        ops.clear();
        ops.reserve(w.next.size());
        for (const WorkItem& it : w.next) {
          ops.push_back(ScheduledOp{it.sender, it.seq, it.bucket,
                                    item_hash(it)});
        }
        sched.order_round(w.index, w.round + 1, ops, order);
        require_permutation(order, w.next.size(), "order_round");
        reorder_by(w.next, order);
      }
      pending += w.next.size();
    }
    if (pending == 0) break;
    for (auto& wp : workers_) {
      std::swap(wp->current, wp->next);
      ++wp->round;
    }
  }
}

ParallelEngine::WorkItem ParallelEngine::take_item(Worker& w) {
  if (w.pool.empty()) return WorkItem{};
  WorkItem item = std::move(w.pool.back());
  w.pool.pop_back();
  item.token.wmes.clear();
  item.key.clear();
  item.parent = 0;
  item.seq = 0;
  return item;
}

void ParallelEngine::recycle_items(Worker& w, std::vector<WorkItem>& items) {
  for (WorkItem& item : items) w.pool.push_back(std::move(item));
  items.clear();
}

void ParallelEngine::scan_roots(Worker& w) {
  // Round 0 of a fused phase holds the roots of EVERY change in the
  // batch, in change order — the same order the serial engine would have
  // seeded them across its per-change drains.
  for (std::size_t c = 0; c < phase_change_count_; ++c) {
    const ops5::WmeChange& change = phase_changes_[c];
    const Tag tag =
        change.kind == ops5::WmeChange::Kind::Add ? Tag::Plus : Tag::Minus;
    const WmeId id = change.wme.id();
    for (const AlphaNode& alpha : net_.alphas()) {
      if (!alpha.matches(change.wme)) continue;
      for (const AlphaSuccessor& succ : alpha.successors) {
        const BetaNode& dest = net_.beta(succ.beta);
        WorkItem item = take_item(w);
        item.sender = w.index;
        item.node = succ.beta;
        item.side = succ.side;
        item.tag = tag;
        if (succ.side == Side::Left) {
          item.token.wmes.push_back(id);
          left_key_into(dest, item.token, item.key);
        } else {
          item.wme = id;
          right_key_into(dest, change.wme, item.key);
        }
        item.bucket = rete::bucket_index(succ.beta, item.key, num_buckets_);
        if (owner_map_[item.bucket] != w.index) {
          w.pool.push_back(std::move(item));
          continue;
        }
        w.current.push_back(std::move(item));
      }
    }
  }
}

void ParallelEngine::process_item(Worker& w, const WorkItem& item) {
  if (w.lane == nullptr) {
    if (item.side == Side::Left) {
      process_left(w, item);
    } else {
      process_right(w, item);
    }
    return;
  }
  // Per-bucket load accounting: tokens touched = opposite-memory
  // candidates compared (comparisons delta) plus the activation itself.
  const std::uint64_t before = w.stats.comparisons;
  if (item.side == Side::Left) {
    process_left(w, item);
  } else {
    process_right(w, item);
  }
  w.lane->bucket_load(item.bucket, w.stats.comparisons - before + 1);
}

void ParallelEngine::left_key_into(const BetaNode& node, const Token& t,
                                   std::vector<Value>& out) const {
  out.clear();
  out.reserve(node.n_eq_tests);
  for (std::uint32_t i = 0; i < node.n_eq_tests; ++i) {
    const JoinTest& test = node.tests[i];
    out.push_back(wmes_.at(t.wmes[test.left_pos]).get(test.left_attr));
  }
}

void ParallelEngine::right_key_into(const BetaNode& node, const ops5::Wme& w,
                                    std::vector<Value>& out) const {
  out.clear();
  out.reserve(node.n_eq_tests);
  for (std::uint32_t i = 0; i < node.n_eq_tests; ++i) {
    out.push_back(w.get(node.tests[i].right_attr));
  }
}

bool ParallelEngine::non_eq_tests_pass(const BetaNode& node, const Token& t,
                                       const ops5::Wme& w) const {
  for (std::uint32_t i = node.n_eq_tests; i < node.tests.size(); ++i) {
    const JoinTest& test = node.tests[i];
    const Value& lv = wmes_.at(t.wmes[test.left_pos]).get(test.left_attr);
    if (!w.get(test.right_attr).test(test.pred, lv)) return false;
  }
  return true;
}

void ParallelEngine::emit(Worker& w, const BetaNode& node, const Token& token,
                          Tag tag, std::uint64_t provisional_parent,
                          std::uint32_t& successors,
                          std::uint32_t& instantiations) {
  for (const BetaSuccessor& succ : node.successors) {
    ++w.stats.tokens_generated;
    if (succ.kind == BetaSuccessor::Kind::Production) {
      ++instantiations;
      w.deltas.push_back(ConflictDelta{succ.production, token, tag, w.round});
    } else {
      ++successors;
      const BetaNode& dest = net_.beta(succ.beta);
      WorkItem child = take_item(w);
      child.parent = provisional_parent;
      child.seq = w.emit_seq++;
      child.sender = w.index;
      child.node = succ.beta;
      child.side = Side::Left;  // two-input node outputs feed left inputs only
      child.tag = tag;
      child.token = token;  // copy-assign reuses the recycled capacity
      left_key_into(dest, token, child.key);
      child.bucket = rete::bucket_index(succ.beta, child.key, num_buckets_);
      route(w, std::move(child));
    }
  }
}

void ParallelEngine::route(Worker& w, WorkItem item) {
  const std::uint32_t owner = owner_map_[item.bucket];
  if (owner == w.index) {
    ++w.wstats.local_deliveries;
    w.self_next.push_back(std::move(item));
  } else {
    ++w.wstats.messages_sent;
    if (w.lane == nullptr) {
      workers_[owner]->mailbox.push(w.index, std::move(item));
    } else {
      // Cross-worker pushes nest inside the match loop; the accumulated
      // time rides on the Match span's aux and reports re-attribute it
      // to MailboxEnqueue so the categories stay disjoint.
      const auto push_start = obs::ProfLane::now();
      workers_[owner]->mailbox.push(w.index, std::move(item));
      w.prof_enqueue_ns += ns_between(push_start, obs::ProfLane::now());
    }
  }
}

void ParallelEngine::process_left(Worker& w, const WorkItem& item) {
  const BetaNode& node = net_.beta(item.node);
  ++w.stats.left_activations;
  ++w.wstats.activations;
  const std::uint64_t prov =
      (static_cast<std::uint64_t>(w.index + 1) << 40) |
      ++w.provisional_counter;

  PendingRecord pr;
  pr.provisional_id = prov;
  pr.provisional_parent = item.parent;
  pr.round = w.round;
  pr.rec.node = node.id;
  pr.rec.side = Side::Left;
  pr.rec.tag = item.tag;
  pr.rec.bucket = item.bucket;

  if (node.kind == BetaNode::Kind::Join) {
    if (item.tag == Tag::Plus) {
      w.left.insert(node.id, item.token, item.key);
    } else if (!w.left.erase(node.id, item.token, item.key)) {
      ++w.stats.stale_deletes;
    }
    const auto candidates = w.right.find(node.id, item.key);
    for (HashedMemory::Entry* e : candidates) {
      ++w.stats.comparisons;
      const ops5::Wme& wme = wmes_.at(e->token.wmes[0]);
      if (!non_eq_tests_pass(node, item.token, wme)) continue;
      // Build the join child in the worker's scratch token: emit copies
      // it into recycled WorkItems / the delta list, so no fresh vector
      // is allocated per candidate.
      w.scratch.wmes.assign(item.token.wmes.begin(), item.token.wmes.end());
      w.scratch.wmes.push_back(e->token.wmes[0]);
      emit(w, node, w.scratch, item.tag, prov, pr.rec.successors,
           pr.rec.instantiations);
    }
  } else {  // Negative node
    if (item.tag == Tag::Plus) {
      int count = 0;
      const auto candidates = w.right.find(node.id, item.key);
      for (HashedMemory::Entry* e : candidates) {
        ++w.stats.comparisons;
        if (non_eq_tests_pass(node, item.token, wmes_.at(e->token.wmes[0]))) {
          ++count;
        }
      }
      w.left.insert(node.id, item.token, item.key);
      w.left.find_token(node.id, item.token, item.key)->neg_count = count;
      if (count == 0) {
        emit(w, node, item.token, Tag::Plus, prov, pr.rec.successors,
             pr.rec.instantiations);
      }
    } else {
      HashedMemory::Entry* e = w.left.find_token(node.id, item.token, item.key);
      if (e == nullptr) {
        ++w.stats.stale_deletes;
      } else {
        const bool was_propagated = e->neg_count == 0;
        w.left.erase(node.id, item.token, item.key);
        if (was_propagated) {
          emit(w, node, item.token, Tag::Minus, prov, pr.rec.successors,
               pr.rec.instantiations);
        }
      }
    }
  }
  w.records.push_back(std::move(pr));
}

void ParallelEngine::process_right(Worker& w, const WorkItem& item) {
  const BetaNode& node = net_.beta(item.node);
  ++w.stats.right_activations;
  ++w.wstats.activations;
  const ops5::Wme& wme = wmes_.at(item.wme);
  w.scratch_wme.wmes.assign(1, item.wme);
  const Token& wme_token = w.scratch_wme;
  const std::uint64_t prov =
      (static_cast<std::uint64_t>(w.index + 1) << 40) |
      ++w.provisional_counter;

  PendingRecord pr;
  pr.provisional_id = prov;
  pr.provisional_parent = item.parent;
  pr.round = w.round;
  pr.rec.node = node.id;
  pr.rec.side = Side::Right;
  pr.rec.tag = item.tag;
  pr.rec.bucket = item.bucket;

  if (node.kind == BetaNode::Kind::Join) {
    if (item.tag == Tag::Plus) {
      w.right.insert(node.id, wme_token, item.key);
    } else if (!w.right.erase(node.id, wme_token, item.key)) {
      ++w.stats.stale_deletes;
    }
    const auto candidates = w.left.find(node.id, item.key);
    for (HashedMemory::Entry* e : candidates) {
      ++w.stats.comparisons;
      if (!non_eq_tests_pass(node, e->token, wme)) continue;
      w.scratch.wmes.assign(e->token.wmes.begin(), e->token.wmes.end());
      w.scratch.wmes.push_back(item.wme);
      emit(w, node, w.scratch, item.tag, prov, pr.rec.successors,
           pr.rec.instantiations);
    }
  } else {  // Negative node
    if (item.tag == Tag::Plus) {
      w.right.insert(node.id, wme_token, item.key);
      const auto candidates = w.left.find(node.id, item.key);
      for (HashedMemory::Entry* e : candidates) {
        ++w.stats.comparisons;
        if (!non_eq_tests_pass(node, e->token, wme)) continue;
        if (e->neg_count++ == 0) {
          emit(w, node, e->token, Tag::Minus, prov, pr.rec.successors,
               pr.rec.instantiations);
        }
      }
    } else {
      if (!w.right.erase(node.id, wme_token, item.key)) {
        ++w.stats.stale_deletes;
      } else {
        const auto candidates = w.left.find(node.id, item.key);
        for (HashedMemory::Entry* e : candidates) {
          ++w.stats.comparisons;
          if (!non_eq_tests_pass(node, e->token, wme)) continue;
          if (--e->neg_count == 0) {
            emit(w, node, e->token, Tag::Plus, prov, pr.rec.successors,
                 pr.rec.instantiations);
          }
        }
      }
    }
  }
  w.records.push_back(std::move(pr));
}

void ParallelEngine::process_change(const ops5::WmeChange& change) {
  if (batching_) {
    pending_batch_.push_back(change);
    return;
  }
  run_phase(&change, 1);
}

void ParallelEngine::process_changes(std::span<const ops5::WmeChange> changes) {
  if (batching_) {
    pending_batch_.insert(pending_batch_.end(), changes.begin(),
                          changes.end());
    return;
  }
  if (changes.empty()) return;
  // Compatibility shim: since the serving PR, begin_batch()/flush() is the
  // one way phases run — this routes each max_batch-sized chunk through an
  // implicit transaction (one fused phase per chunk, exactly the chunking
  // this function did directly before).
  const std::size_t chunk =
      options_.max_batch == 0 ? changes.size() : options_.max_batch;
  for (std::size_t i = 0; i < changes.size(); i += chunk) {
    const std::size_t n = std::min(chunk, changes.size() - i);
    begin_batch();
    for (std::size_t j = 0; j < n; ++j) process_change(changes[i + j]);
    flush();
  }
}

void ParallelEngine::begin_batch() {
  if (batching_) {
    throw RuntimeError("ParallelEngine: a batch is already open");
  }
  batching_ = true;
}

void ParallelEngine::flush() {
  if (!batching_) {
    throw RuntimeError("ParallelEngine: no open batch to flush");
  }
  batching_ = false;
  if (pending_batch_.empty()) return;
  run_phase(pending_batch_.data(), pending_batch_.size());
  pending_batch_.clear();
}

void ParallelEngine::run_phase(const ops5::WmeChange* changes,
                               std::size_t count) {
  // Per-change pre-work, in change order: the listener sees every change
  // before any of the batch's activations; adds enter the wme table so
  // worker-side key building can resolve them; and single-positive-CE
  // productions update the conflict set directly (same scan order as the
  // serial engine).  Everything else is seeded by the workers' own alpha
  // scans over the whole batch.
  for (std::size_t c = 0; c < count; ++c) {
    const ops5::WmeChange& change = changes[c];
    if (listener_ != nullptr) listener_->on_wme_change(change);
    const Tag tag =
        change.kind == ops5::WmeChange::Kind::Add ? Tag::Plus : Tag::Minus;
    const WmeId id = change.wme.id();
    if (tag == Tag::Plus) {
      wmes_.emplace(id, change.wme);
    }
    for (const AlphaNode& alpha : net_.alphas()) {
      if (!alpha.matches(change.wme)) continue;
      for (ProductionId pid : alpha.direct_productions) {
        update_conflict_set(pid, Token{{id}}, tag);
      }
    }
  }
  const std::uint64_t rounds_before = rounds_executed_;
  const auto phase_wall_start = control_lane_ == nullptr
                                    ? obs::ProfLane::Clock::time_point{}
                                    : obs::ProfLane::now();
  if (options_.schedule != nullptr) {
    phase_changes_ = changes;
    phase_change_count_ = count;
    options_.schedule->begin_phase(phases_);
    try {
      run_controlled_phase();
    } catch (...) {
      phase_changes_ = nullptr;
      phase_change_count_ = 0;
      throw;
    }
    phase_changes_ = nullptr;
    phase_change_count_ = 0;
  } else {
    {
      std::unique_lock<std::mutex> lock(mu_);
      phase_changes_ = changes;
      phase_change_count_ = count;
      ++phase_gen_;
      start_cv_.notify_all();
      done_cv_.wait(lock, [&] { return workers_done_ == threads_; });
      workers_done_ = 0;
      phase_changes_ = nullptr;
      phase_change_count_ = 0;
    }
    std::exception_ptr error;
    for (auto& w : workers_) {
      if (w->error != nullptr && error == nullptr) error = w->error;
      w->error = nullptr;
    }
    if (error != nullptr) std::rethrow_exception(error);
  }
  if (control_lane_ == nullptr) {
    merge_phase();
  } else {
    // Control-thread merge runs while the workers are parked, so it is
    // reported on its own lane, on top of (not inside) the worker walls.
    // The control lane's phase spans (handshake start → merge end) are
    // the engine-wall denominator percentage reports normalize the
    // conflict-update time against — which is why conflict_update_pct
    // can no longer exceed 100.
    std::uint64_t merged = 0;
    for (const auto& w : workers_) {
      merged += w->records.size() + w->deltas.size();
    }
    const auto merge_start = obs::ProfLane::now();
    merge_phase();
    const auto merge_end = obs::ProfLane::now();
    control_lane_->span(obs::ProfCategory::ConflictUpdate,
                        static_cast<std::uint32_t>(rounds_before),
                        control_lane_->stamp(merge_start),
                        control_lane_->stamp(merge_end), merged);
    control_lane_->phase_span(control_lane_->stamp(phase_wall_start),
                              control_lane_->stamp(merge_end));
    options_.profiler->add_phase(rounds_executed_ - rounds_before, count);
  }
  for (std::size_t c = 0; c < count; ++c) {
    if (changes[c].kind == ops5::WmeChange::Kind::Delete) {
      wmes_.erase(changes[c].wme.id());
    }
  }
  ++phases_;
  changes_ += count;
  collect_stats();
  flush_metrics();
}

void ParallelEngine::merge_phase() {
  // Deterministic causal merge: round-major, worker-minor, per-worker
  // emission order.  Rounds are BFS levels, so a parent's record is always
  // assigned its final id before any of its children are remapped; at one
  // thread this order IS the serial engine's FIFO order.
  remap_.clear();
  std::vector<std::size_t> rec_cursor(threads_, 0);
  std::vector<std::size_t> delta_cursor(threads_, 0);
  auto all_merged = [&] {
    for (std::uint32_t i = 0; i < threads_; ++i) {
      if (rec_cursor[i] < workers_[i]->records.size()) return false;
      if (delta_cursor[i] < workers_[i]->deltas.size()) return false;
    }
    return true;
  };
  for (std::uint32_t round = 0; !all_merged(); ++round) {
    for (std::uint32_t i = 0; i < threads_; ++i) {
      auto& records = workers_[i]->records;
      while (rec_cursor[i] < records.size() &&
             records[rec_cursor[i]].round == round) {
        PendingRecord& pr = records[rec_cursor[i]++];
        ActivationRecord rec = pr.rec;
        rec.id = ActivationId{next_activation_++};
        remap_.emplace(pr.provisional_id, rec.id);
        rec.parent = pr.provisional_parent == 0
                         ? ActivationId::invalid()
                         : remap_.at(pr.provisional_parent);
        if (listener_ != nullptr) listener_->on_activation(rec);
      }
    }
    if (options_.schedule == nullptr) {
      for (std::uint32_t i = 0; i < threads_; ++i) {
        auto& deltas = workers_[i]->deltas;
        while (delta_cursor[i] < deltas.size() &&
               deltas[delta_cursor[i]].round == round) {
          ConflictDelta& d = deltas[delta_cursor[i]++];
          update_conflict_set(d.pid, d.token, d.tag);
        }
      }
    } else {
      // Controlled mode: the controller picks the application order of
      // this round's deltas (the free path's worker-minor order is just
      // one admissible linearization).  Records above stay round-major /
      // worker-minor in both modes — parents must be remapped before
      // their children regardless of schedule.
      std::vector<const ConflictDelta*> group;
      std::vector<ScheduledOp> ops;
      for (std::uint32_t i = 0; i < threads_; ++i) {
        auto& deltas = workers_[i]->deltas;
        std::uint64_t seq = 0;
        while (delta_cursor[i] < deltas.size() &&
               deltas[delta_cursor[i]].round == round) {
          const ConflictDelta& d = deltas[delta_cursor[i]++];
          ops.push_back(ScheduledOp{
              i, seq++,
              static_cast<std::uint32_t>(delta_dependence_hash(d)),
              delta_identity_hash(d)});
          group.push_back(&d);
        }
      }
      if (!group.empty()) {
        std::vector<std::uint32_t> order;
        options_.schedule->order_merge(round, ops, order);
        require_permutation(order, group.size(), "order_merge");
        for (std::uint32_t idx : order) {
          update_conflict_set(group[idx]->pid, group[idx]->token,
                              group[idx]->tag);
        }
      }
    }
  }
}

void ParallelEngine::update_conflict_set(ProductionId pid, const Token& token,
                                         Tag tag) {
  rete::Instantiation inst{pid, token};
  if (tag == Tag::Plus) {
    conflict_.add(std::move(inst));
  } else {
    conflict_.remove(inst);
  }
}

void ParallelEngine::collect_stats() {
  stats_ = rete::EngineStats{};
  for (const auto& w : workers_) {
    stats_.left_activations += w->stats.left_activations;
    stats_.right_activations += w->stats.right_activations;
    stats_.tokens_generated += w->stats.tokens_generated;
    stats_.comparisons += w->stats.comparisons;
    stats_.stale_deletes += w->stats.stale_deletes;
  }
}

std::vector<WorkerStats> ParallelEngine::worker_stats() const {
  std::vector<WorkerStats> out;
  out.reserve(threads_);
  for (const auto& w : workers_) {
    WorkerStats s = w->wstats;
    const auto mb = w->mailbox.stats();
    s.max_mailbox_depth = mb.max_depth;
    s.mailbox_overflows = mb.overflows;
    out.push_back(s);
  }
  return out;
}

void ParallelEngine::flush_metrics() {
  if (options_.metrics == nullptr) return;
  instr_.left->add(stats_.left_activations - flushed_.left_activations);
  instr_.right->add(stats_.right_activations - flushed_.right_activations);
  instr_.tokens->add(stats_.tokens_generated - flushed_.tokens_generated);
  instr_.comparisons->add(stats_.comparisons - flushed_.comparisons);
  instr_.stale->add(stats_.stale_deletes - flushed_.stale_deletes);
  std::size_t live = 0;
  for (const auto& w : workers_) {
    live += w->left.total_tokens() + w->right.total_tokens();
  }
  instr_.live_tokens->set(static_cast<std::int64_t>(live));
  const std::vector<WorkerStats> current = worker_stats();
  std::uint64_t messages = 0;
  std::uint64_t local = 0;
  std::uint64_t overflows = 0;
  for (std::uint32_t i = 0; i < threads_; ++i) {
    messages += current[i].messages_sent - flushed_workers_[i].messages_sent;
    local +=
        current[i].local_deliveries - flushed_workers_[i].local_deliveries;
    overflows +=
        current[i].mailbox_overflows - flushed_workers_[i].mailbox_overflows;
    instr_.busy[i]->add(current[i].busy_ns - flushed_workers_[i].busy_ns);
    instr_.idle[i]->add(current[i].idle_ns - flushed_workers_[i].idle_ns);
  }
  instr_.messages->add(messages);
  instr_.local->add(local);
  instr_.overflows->add(overflows);
  instr_.rounds->add(rounds_executed_ - flushed_rounds_);
  instr_.phases->add(phases_ - flushed_phases_);
  instr_.changes->add(changes_ - flushed_changes_);
  for (const auto& w : workers_) {
    for (std::uint64_t depth : w->drain_depths) {
      instr_.mailbox_depth->observe(static_cast<std::int64_t>(depth));
    }
  }
  flushed_ = stats_;
  flushed_workers_ = current;
  flushed_rounds_ = rounds_executed_;
  flushed_phases_ = phases_;
  flushed_changes_ = changes_;
}

rete::MatchEngineFactory parallel_engine_factory(ParallelOptions options) {
  return [options](const rete::Network& net, const rete::EngineOptions& eopts)
             -> std::unique_ptr<rete::MatchEngine> {
    ParallelOptions merged = options;
    if (merged.num_buckets == 0 && !merged.assignment.has_value()) {
      merged.num_buckets = eopts.num_buckets;
    }
    if (merged.metrics == nullptr) merged.metrics = eopts.metrics;
    return std::make_unique<ParallelEngine>(net, merged);
  };
}

sim::Assignment greedy_static(const trace::Trace& trace, std::uint32_t threads,
                              const sim::CostModel& costs) {
  if (threads == 0) threads = 1;
  const std::uint32_t num_buckets = trace.num_buckets;
  std::vector<std::uint64_t> cost(num_buckets, 0);
  for (const auto& cycle : trace.cycles) {
    for (const auto& a : cycle.activations) {
      const SimTime c = costs.token_cost(a.side == Side::Left) +
                        costs.per_successor * a.successors;
      cost[a.bucket] += static_cast<std::uint64_t>(c.nanos());
    }
  }
  std::vector<std::uint32_t> order(num_buckets);
  for (std::uint32_t b = 0; b < num_buckets; ++b) order[b] = b;
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return cost[a] != cost[b] ? cost[a] > cost[b] : a < b;
            });
  std::vector<std::uint64_t> load(threads, 0);
  std::vector<std::uint32_t> map(num_buckets, 0);
  std::uint32_t rr = 0;
  for (std::uint32_t b : order) {
    if (cost[b] == 0) {
      // Zero-cost buckets are dealt round-robin, as in Assignment::greedy.
      map[b] = rr;
      rr = (rr + 1) % threads;
      continue;
    }
    std::uint32_t best = 0;
    for (std::uint32_t p = 1; p < threads; ++p) {
      if (load[p] < load[best]) best = p;
    }
    map[b] = best;
    load[best] += cost[b];
  }
  return sim::Assignment::fixed(std::move(map), threads);
}

}  // namespace mpps::pmatch
