// The parallel match engine: the paper's architecture executed for real on
// shared-memory threads instead of simulated from a trace.  N worker
// threads act as match processors; the bucket space of the global hashed
// token memories is partitioned across them with the same
// `sim::Assignment` policies the simulator maps with; and token
// activations travel between workers through bounded MPSC mailboxes (the
// "messages").  A cycle barrier at conflict-set assembly hands the merged
// conflict set back to the Interpreter's match-resolve-act loop.
//
// Execution model (docs/PARALLEL_MATCH.md has the full walkthrough):
// WM changes run as bulk-synchronous phases.  Workers process activation
// rounds — round 0 holds the constant-test roots, round r+1 holds the
// tokens round r generated — with a barrier between rounds at which
// mailboxes are drained and the next round is sorted by
// (sender, sequence).  Because an activation touches exactly one
// left/right bucket pair and each pair has one owner, per-bucket state
// never needs a lock; because rounds are merged in deterministic order,
// the conflict set, trace records and activation ids are reproducible for
// a fixed thread count — and at 1 thread with max_batch == 1 (the
// default) they are byte-identical to the serial `rete::Engine` (asserted
// in tests/pmatch_determinism_test.cpp).
//
// Batching (the paper's multiple-modify effect, §4): with
// `ParallelOptions::max_batch > 1`, `process_changes` runs up to
// max_batch consecutive WM changes as ONE phase — their constant-test
// roots all seed round 0 in change order, so the batch shares the
// per-round barriers and the (sender, seq) sorts instead of paying them
// once per change.  The conflict set after a batched phase equals the
// serial engine's after the same changes (as a set: join candidates
// share a bucket, so the +/- deltas of any one instantiation come from
// one worker in emission order and the round-major merge preserves it) —
// asserted against the serial oracle in tests/pmatch_batch_test.cpp.
#pragma once

#include <atomic>
#include <barrier>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/ids.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/profiler.hpp"
#include "src/ops5/wme.hpp"
#include "src/pmatch/mailbox.hpp"
#include "src/pmatch/schedule.hpp"
#include "src/rete/conflict.hpp"
#include "src/rete/engine.hpp"
#include "src/rete/memory.hpp"
#include "src/rete/network.hpp"
#include "src/sim/assignment.hpp"
#include "src/sim/costs.hpp"
#include "src/trace/record.hpp"

namespace mpps::pmatch {

struct ParallelOptions {
  /// Worker threads = match processors.  0 ⇒ 1.
  std::uint32_t threads = 2;
  /// Buckets per memory side; 0 ⇒ inherit rete::EngineOptions::num_buckets
  /// through `parallel_engine_factory` (256 when constructed directly).
  std::uint32_t num_buckets = 0;
  /// Bucket-to-worker policy when no explicit `assignment` is given.
  enum class Partition : std::uint8_t { RoundRobin, Random };
  Partition partition = Partition::RoundRobin;
  /// Seed for Partition::Random.
  std::uint64_t seed = 1;
  /// Explicit bucket→worker map (e.g. from `greedy_static`).  Overrides
  /// `partition`/`num_buckets`; its num_procs must equal `threads`.  Only
  /// the cycle-0 map is used: tokens live in worker-owned memories across
  /// cycles, so the partition cannot migrate mid-run.
  std::optional<sim::Assignment> assignment;
  /// Mailbox backpressure threshold (see mailbox.hpp).  Must be positive;
  /// zero is rejected at construction (and earlier, with a UsageError, by
  /// the CLI / ParallelOptionsBuilder layers).
  std::size_t mailbox_capacity = 1024;
  /// Upper bound on WM changes fused into one BSP phase by
  /// `process_changes`.  1 (default) keeps the legacy one-change-one-phase
  /// behaviour (and byte-identical traces to the serial engine at one
  /// thread); 0 means "no bound" — a whole act-phase batch runs as a
  /// single phase.  `begin_batch()`/`flush()` ignore this bound: an
  /// explicit batch is always one phase.
  std::uint32_t max_batch = 1;
  /// Optional metrics registry (not owned).  Mirrors the serial engine's
  /// rete.* counters and adds pmatch.* measured counters: per-worker
  /// busy/idle nanoseconds, messages vs local deliveries, rounds, mailbox
  /// depth and overflows.  Null ⇒ no recording.
  obs::Registry* metrics = nullptr;
  /// Optional phase-attribution profiler (not owned; must outlive the
  /// engine).  The engine attaches it at construction (one profiler per
  /// engine) and every worker records wall-clock category spans plus
  /// per-bucket load into its own lane.  Null ⇒ profiling off: each
  /// recording site reduces to one pointer test and takes no clock
  /// readings (tests/pmatch_profile_test.cpp asserts results are
  /// identical either way).
  obs::Profiler* profiler = nullptr;
  /// Optional schedule controller (not owned; must outlive the engine).
  /// Non-null switches the engine into schedule-controlled mode: no worker
  /// threads are spawned, no barriers are taken, and the control thread
  /// runs every worker's rounds cooperatively, asking the controller for
  /// each admissible ordering decision (src/pmatch/schedule.hpp).  This is
  /// the seam the `src/mc` model checker drives.  Controlled mode is for
  /// exploring orderings, not for measurement: busy/idle worker stats stay
  /// zero, and combining it with `profiler` throws at construction.
  ScheduleControl* schedule = nullptr;
};

/// Measured (wall-clock) per-worker counters, cumulative over the run.
/// busy/idle are nondeterministic by nature; everything else is
/// deterministic for a fixed thread count.
struct WorkerStats {
  std::uint64_t busy_ns = 0;
  std::uint64_t idle_ns = 0;            // time parked at round barriers
  std::uint64_t activations = 0;        // items this worker processed
  std::uint64_t messages_sent = 0;      // children routed to other workers
  std::uint64_t local_deliveries = 0;   // children kept on this worker
  std::uint64_t max_mailbox_depth = 0;
  std::uint64_t mailbox_overflows = 0;
};

class ParallelEngine final : public rete::MatchEngine {
 public:
  /// The network must outlive the engine.  Spawns the worker threads.
  explicit ParallelEngine(const rete::Network& net,
                          ParallelOptions options = {});
  ~ParallelEngine() override;

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  void set_listener(rete::ActivationListener* listener) override {
    listener_ = listener;
  }

  /// Runs one WM change as a bulk-synchronous phase across the workers
  /// (or, inside `begin_batch()`, defers it until `flush()`).
  void process_change(const ops5::WmeChange& change) override;

  /// Runs the changes in chunks of `ParallelOptions::max_batch` fused
  /// phases (see the header comment).  The interpreter hands each act
  /// phase's WM deltas here in one call.  Deprecated as a direct entry
  /// point: it is now a thin shim that opens a `begin_batch()`/`flush()`
  /// transaction per chunk, so the transaction surface (and the
  /// serve-layer Session API built on it, docs/SERVING.md) is the single
  /// path that runs phases.  Behaviour is identical; the facade test
  /// suite pins conflict-set equality between the two spellings.
  void process_changes(std::span<const ops5::WmeChange> changes) override;

  /// Explicit transaction API: between `begin_batch()` and `flush()`,
  /// `process_change` only queues.  `flush()` runs everything queued as
  /// ONE fused phase (regardless of max_batch) and leaves batch mode.
  /// The conflict set, `wme()` and stats are stale while a batch is open.
  /// Misuse is loud: `begin_batch()` with a batch already open and
  /// `flush()` without one both throw mpps::RuntimeError, and the engine
  /// stays fully usable after the throw.
  void begin_batch();
  void flush();
  [[nodiscard]] bool batching() const { return batching_; }

  [[nodiscard]] rete::ConflictSet& conflict_set() override {
    return conflict_;
  }
  [[nodiscard]] const ops5::Wme& wme(WmeId id) const override {
    return wmes_.at(id);
  }
  /// Aggregated across workers.  Identical to the serial engine's at
  /// 1 thread; at >1 threads transient +/- token pairs (which cancel
  /// before the conflict set) may add to the generation counters.
  [[nodiscard]] const rete::EngineStats& stats() const override {
    return stats_;
  }

  [[nodiscard]] std::uint32_t threads() const { return threads_; }
  [[nodiscard]] std::uint32_t num_buckets() const { return num_buckets_; }
  [[nodiscard]] const sim::Assignment& assignment() const {
    return assignment_;
  }
  /// Snapshot of the measured per-worker counters.  Call between
  /// process_change calls (i.e. not concurrently with a phase).
  [[nodiscard]] std::vector<WorkerStats> worker_stats() const;
  /// Total BSP rounds executed across all phases.
  [[nodiscard]] std::uint64_t rounds() const { return rounds_executed_; }
  /// Physical BSP phases run (<= changes() when batching).
  [[nodiscard]] std::uint64_t phases() const { return phases_; }
  /// WM changes processed (each phase covers >= 1 of them).
  [[nodiscard]] std::uint64_t changes() const { return changes_; }

 private:
  /// One activation in flight: the unit a mailbox carries.
  struct WorkItem {
    std::uint64_t parent = 0;  // provisional id; 0 ⇒ constant-test root
    std::uint64_t seq = 0;     // per-(sender, round) emission index
    std::uint32_t sender = 0;
    NodeId node;
    rete::Side side = rete::Side::Left;
    rete::Tag tag = rete::Tag::Plus;
    rete::Token token;               // left items
    WmeId wme;                       // right items (roots only)
    std::vector<rete::Value> key;    // equality key at the destination node
    std::uint32_t bucket = 0;
  };

  /// A completed activation awaiting the deterministic merge.
  struct PendingRecord {
    rete::ActivationRecord rec;  // id/parent assigned at merge
    std::uint64_t provisional_id = 0;
    std::uint64_t provisional_parent = 0;
    std::uint32_t round = 0;
  };

  /// A conflict-set update awaiting the deterministic merge.
  struct ConflictDelta {
    ProductionId pid;
    rete::Token token;
    rete::Tag tag = rete::Tag::Plus;
    std::uint32_t round = 0;
  };

  struct Worker {
    std::uint32_t index = 0;
    rete::HashedMemory left;
    rete::HashedMemory right;
    Mailbox<WorkItem> mailbox;
    // Per-phase state, touched only by the owning thread during a phase
    // and by the control thread between phases.
    std::vector<WorkItem> current;
    std::vector<WorkItem> next;
    std::vector<WorkItem> self_next;  // children staying on this worker
    std::vector<WorkItem> pool;  // retired items recycled to kill per-
                                 // activation token/key allocations
    rete::Token scratch;         // join-child token built in place
    rete::Token scratch_wme;     // right-activation single-wme token
    std::vector<PendingRecord> records;
    std::vector<ConflictDelta> deltas;
    std::vector<std::uint64_t> drain_depths;  // one sample per round
    std::uint64_t provisional_counter = 0;
    std::uint64_t emit_seq = 0;
    std::uint32_t round = 0;
    rete::EngineStats stats;  // cumulative across phases
    WorkerStats wstats;       // cumulative across phases
    obs::ProfLane* lane = nullptr;    // null ⇒ profiling off
    std::uint64_t prof_enqueue_ns = 0;  // per-round mailbox-push time
    std::exception_ptr error;
    std::thread thread;

    Worker(std::uint32_t idx, std::uint32_t num_buckets,
           std::size_t mailbox_capacity, std::uint32_t producers)
        : index(idx),
          left(num_buckets),
          right(num_buckets),
          mailbox(mailbox_capacity, producers) {}
  };

  struct ExchangeCompletion {
    ParallelEngine* engine;
    void operator()() noexcept { engine->on_exchange(); }
  };

  struct Instruments {
    obs::Counter* left = nullptr;
    obs::Counter* right = nullptr;
    obs::Counter* tokens = nullptr;
    obs::Counter* comparisons = nullptr;
    obs::Counter* stale = nullptr;
    obs::Gauge* live_tokens = nullptr;
    obs::Counter* messages = nullptr;
    obs::Counter* local = nullptr;
    obs::Counter* rounds = nullptr;
    obs::Counter* phases = nullptr;
    obs::Counter* changes = nullptr;
    obs::Counter* overflows = nullptr;
    obs::Histogram* mailbox_depth = nullptr;
    std::vector<obs::Counter*> busy;  // per worker
    std::vector<obs::Counter*> idle;  // per worker
  };

  void worker_main(Worker& w);
  /// Runs `count` consecutive WM changes as one fused BSP phase (the
  /// single control-side path behind process_change / process_changes /
  /// flush).
  void run_phase(const ops5::WmeChange* changes, std::size_t count);
  void run_worker_phase(Worker& w);
  /// Schedule-controlled counterpart of the threaded round loop: runs
  /// every worker's rounds cooperatively on the calling thread, with the
  /// controller choosing drain and processing orders.
  void run_controlled_phase();
  void scan_roots(Worker& w);
  /// Pops a recycled WorkItem (token/key capacity intact) or default-
  /// constructs one.
  [[nodiscard]] WorkItem take_item(Worker& w);
  /// Moves every item of `items` into the worker's pool and clears it.
  void recycle_items(Worker& w, std::vector<WorkItem>& items);
  void process_item(Worker& w, const WorkItem& item);
  void process_left(Worker& w, const WorkItem& item);
  void process_right(Worker& w, const WorkItem& item);
  void emit(Worker& w, const rete::BetaNode& node, const rete::Token& token,
            rete::Tag tag, std::uint64_t provisional_parent,
            std::uint32_t& successors, std::uint32_t& instantiations);
  void route(Worker& w, WorkItem item);
  void on_exchange() noexcept;

  /// Fill-in key builders: clear `out` and append, reusing its capacity
  /// (the allocating by-value forms were the per-activation hot-path
  /// allocation the batching PR removed).
  void left_key_into(const rete::BetaNode& node, const rete::Token& t,
                     std::vector<rete::Value>& out) const;
  void right_key_into(const rete::BetaNode& node, const ops5::Wme& w,
                      std::vector<rete::Value>& out) const;
  [[nodiscard]] bool non_eq_tests_pass(const rete::BetaNode& node,
                                       const rete::Token& t,
                                       const ops5::Wme& w) const;

  void merge_phase();
  /// Content hashes feeding ScheduledOp: `item_hash` identifies a round
  /// item's full effect (node, side, tag, payload); the delta hashes
  /// identify a conflict delta with (`identity`) and without
  /// (`dependence`) its +/- tag — deltas sharing the dependence hash are
  /// the add/remove pair of one instantiation and must stay ordered.
  [[nodiscard]] static std::uint64_t item_hash(const WorkItem& item);
  [[nodiscard]] static std::uint64_t delta_identity_hash(
      const ConflictDelta& d);
  [[nodiscard]] static std::uint64_t delta_dependence_hash(
      const ConflictDelta& d);
  void update_conflict_set(ProductionId pid, const rete::Token& token,
                           rete::Tag tag);
  void collect_stats();
  void flush_metrics();

  const rete::Network& net_;
  ParallelOptions options_;
  std::uint32_t threads_ = 1;
  std::uint32_t num_buckets_ = 256;
  sim::Assignment assignment_;
  std::vector<std::uint32_t> owner_map_;  // bucket → worker
  obs::ProfLane* control_lane_ = nullptr;  // null ⇒ profiling off
  rete::ActivationListener* listener_ = nullptr;
  rete::ConflictSet conflict_;
  std::unordered_map<WmeId, ops5::Wme> wmes_;
  std::vector<std::unique_ptr<Worker>> workers_;

  // Phase handshake: control publishes the change and bumps the
  // generation; workers run the phase; the last one to finish wakes the
  // control thread.
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t phase_gen_ = 0;
  std::uint32_t workers_done_ = 0;
  bool stop_ = false;
  // The fused batch the workers scan at round 0 (valid during a phase).
  const ops5::WmeChange* phase_changes_ = nullptr;
  std::size_t phase_change_count_ = 0;

  // Round machinery.  `phase_done_`/`rounds_executed_` are written only by
  // the exchange barrier's completion step, which std::barrier runs
  // exactly once per round with every worker blocked — the barrier
  // sequences those writes against all worker reads.
  std::barrier<> round_barrier_;
  std::barrier<ExchangeCompletion> exchange_barrier_;
  std::atomic<std::uint64_t> pending_total_{0};
  bool phase_done_ = false;
  std::uint64_t rounds_executed_ = 0;

  std::uint64_t next_activation_ = 1;
  std::unordered_map<std::uint64_t, ActivationId> remap_;
  rete::EngineStats stats_;
  rete::EngineStats flushed_;
  std::vector<WorkerStats> flushed_workers_;
  std::uint64_t flushed_rounds_ = 0;
  std::uint64_t phases_ = 0;
  std::uint64_t flushed_phases_ = 0;
  std::uint64_t changes_ = 0;
  std::uint64_t flushed_changes_ = 0;
  // Explicit-transaction state (begin_batch/flush).
  bool batching_ = false;
  std::vector<ops5::WmeChange> pending_batch_;
  Instruments instr_;
};

/// Adapts ParallelOptions into the InterpreterOptions::engine_factory
/// slot.  num_buckets == 0 and metrics == nullptr inherit the values of
/// the rete::EngineOptions the interpreter passes in.
rete::MatchEngineFactory parallel_engine_factory(ParallelOptions options);

/// Whole-trace greedy (LPT) bucket→worker map: the offline-greedy policy
/// of sim::Assignment::greedy collapsed to a single static partition, so
/// it can drive a live engine whose tokens cannot migrate between cycles.
/// Buckets are costed over the entire trace with the paper's cost model
/// (token add/delete + successor generation) and dealt most-expensive
/// first to the least-loaded worker.
sim::Assignment greedy_static(const trace::Trace& trace,
                              std::uint32_t threads,
                              const sim::CostModel& costs);

}  // namespace mpps::pmatch
