// The activation-trace schema: the input to the MPC simulator (our
// reconstruction of the paper's Figure 4-1 trace format).  A trace records,
// per MRA cycle, the DAG of two-input node activations: which node, which
// side, which global hash bucket, which activation generated it, and how
// many successor tokens it generated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/ids.hpp"
#include "src/rete/token.hpp"

namespace mpps::trace {

using rete::Side;
using rete::Tag;

struct TraceActivation {
  ActivationId id;
  /// Generating activation; invalid ⇒ the token came from the constant-test
  /// phase (a broadcast WM change) and is processed locally at coarse
  /// granularity — no message is ever sent for it.
  ActivationId parent;
  NodeId node;
  Side side = Side::Right;
  Tag tag = Tag::Plus;
  /// Global hash bucket index in [0, Trace::num_buckets).  Left and right
  /// buckets with the same index live on the same processor.
  std::uint32_t bucket = 0;
  /// Tokens generated toward successor two-input nodes.  Must equal the
  /// number of trace activations whose parent is this activation.
  std::uint32_t successors = 0;
  /// Tokens sent to production nodes (instantiation messages to the
  /// control processor).
  std::uint32_t instantiations = 0;
  /// Equivalence class of the token's hash key.  Activations with equal
  /// (node, key_class) genuinely interact and must stay co-located; the
  /// copy-and-constraint transformation partitions a node by key_class.
  std::uint32_t key_class = 0;
};

struct TraceCycle {
  std::uint32_t wme_changes = 0;
  std::vector<TraceActivation> activations;  // in generation order
};

struct Trace {
  std::string name;
  std::uint32_t num_buckets = 256;
  std::vector<TraceCycle> cycles;

  [[nodiscard]] std::size_t total_activations() const;
};

/// Checks structural invariants: parents precede children within a cycle,
/// successor counts equal child counts, buckets are in range.  Throws
/// TraceFormatError with a description of the first violation.
void validate(const Trace& trace);

/// Aggregate statistics in the shape of the paper's Table 5-2.
struct TraceStats {
  std::uint64_t left = 0;
  std::uint64_t right = 0;
  std::uint64_t instantiations = 0;
  std::uint64_t root_activations = 0;  // parent == invalid

  [[nodiscard]] std::uint64_t total() const { return left + right; }
  [[nodiscard]] double left_pct() const {
    return total() == 0 ? 0.0
                        : 100.0 * static_cast<double>(left) /
                              static_cast<double>(total());
  }
};

TraceStats compute_stats(const Trace& trace);

/// Total activations per bucket (left+right), for distribution analysis
/// and the offline greedy assignment.  Indexed by bucket.
std::vector<std::uint64_t> bucket_activity(const Trace& trace);

/// Same, restricted to one cycle.
std::vector<std::uint64_t> bucket_activity(const Trace& trace,
                                           std::size_t cycle);

/// Extracts a section: `count` consecutive cycles starting at `first`
/// (0-based) — exactly how the paper built its characteristic sections
/// ("the section represents four consecutive cycles").  Cycle-internal
/// structure is self-contained, so the slice is a valid trace.  Throws
/// TraceFormatError when the range is out of bounds or empty.
Trace slice(const Trace& trace, std::size_t first, std::size_t count);

}  // namespace mpps::trace
