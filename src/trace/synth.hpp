// Synthetic reconstructions of the paper's three characteristic execution
// sections (the original Rubik / Weaver / Tourney traces are lost).  Each
// generator reproduces the published per-section statistics exactly:
//
//   Table 5-2:  Rubik   2388 left / 6114 right / 8502 total, 4 cycles
//               Tourney 10667 / 83 / 10750, one heavy cross-product cycle
//                       surrounded by four small cycles
//               Weaver  338 / 78 / 416, 4 small cycles; in one cycle three
//                       left activations generate 120 of ~150 activations
//
// plus the structural phenomena the analysis depends on: Rubik's per-cycle
// complementary active-bucket sets (Fig 5-5), Weaver's shared bottleneck
// node (Fig 5-3/5-4), and Tourney's non-discriminating cross-product node
// (Fig 5-6).
#pragma once

#include <cstdint>

#include "src/trace/record.hpp"

namespace mpps::trace {

/// The deterministic bucket function shared by the generators and the
/// network transformations: recomputes an activation's bucket after a
/// transformation moves it to a new node.
std::uint32_t bucket_for(NodeId node, std::uint32_t key_class,
                         std::uint32_t num_buckets);

/// Helper for building structurally consistent traces (parents precede
/// children, successor counts maintained).  Used by the generators and by
/// tests that need bespoke workloads.
class SectionBuilder {
 public:
  SectionBuilder(std::string name, std::uint32_t num_buckets);

  void begin_cycle(std::uint32_t wme_changes);

  /// Adds a constant-test-phase activation (no parent, no message).
  /// The bucket is derived from (node, key_class) via `bucket_for`.
  ActivationId root(Side side, NodeId node, std::uint32_t key_class);
  /// Same, with an explicit bucket (cross-product nodes ignore the key).
  ActivationId root_at(Side side, NodeId node, std::uint32_t bucket,
                       std::uint32_t key_class);

  /// Adds a join-generated left activation; increments the parent's
  /// successor count.  The parent must belong to the current cycle.
  ActivationId child(ActivationId parent, NodeId node,
                     std::uint32_t key_class);
  ActivationId child_at(ActivationId parent, NodeId node, std::uint32_t bucket,
                        std::uint32_t key_class);

  /// Marks `act` as producing `count` instantiation messages.
  void add_instantiations(ActivationId act, std::uint32_t count = 1);

  /// Finalizes: validates and returns the trace.
  Trace take();

 private:
  TraceActivation& lookup(ActivationId id);
  ActivationId push(TraceActivation act);

  Trace trace_;
  std::uint64_t next_id_ = 1;
  // id -> index in the current cycle (children reference same-cycle parents)
  std::vector<std::pair<std::uint64_t, std::size_t>> current_index_;
};

/// "Good speedups" section: four consecutive Rubik cycles.
Trace make_rubik_section(std::uint32_t num_buckets = 256,
                         std::uint64_t seed = 1);

/// "Small cycles" section: four consecutive small Weaver cycles, the last
/// containing the three-left-activation bottleneck at a shared node.
/// The bottleneck node id is reported via `bottleneck_node` (for the
/// unsharing experiment).
Trace make_weaver_section(std::uint32_t num_buckets = 256,
                          std::uint64_t seed = 1);

/// "Cross-product" section: one heavy Tourney cycle surrounded by four
/// small cycles.  The cross-product node id is `tourney_cross_node()`.
Trace make_tourney_section(std::uint32_t num_buckets = 256,
                           std::uint64_t seed = 1);

/// Parameterized random trace generation — used by property tests to sweep
/// the simulator and the transformations over arbitrary workload shapes.
struct RandomTraceSpec {
  std::uint32_t cycles = 4;
  std::uint32_t num_buckets = 64;
  std::uint32_t nodes = 24;
  std::uint32_t roots_per_cycle = 40;
  /// Fraction of root activations that are right activations.
  double right_fraction = 0.7;
  /// Expected children per root (geometric-ish cascade).
  double fanout = 1.5;
  /// Probability that a child attaches to another child (chain depth).
  double chain_prob = 0.3;
  /// Probability that an activation produces an instantiation.
  double instantiation_prob = 0.02;
  /// Number of distinct key classes (small ⇒ hot buckets).
  std::uint32_t key_classes = 64;
};

Trace make_random_trace(const RandomTraceSpec& spec, std::uint64_t seed);

/// The node ids the transformations target in the synthetic sections.
NodeId weaver_bottleneck_node();
NodeId tourney_cross_node();
/// The second non-discriminating node of the Tourney cross-product cycle
/// (its tokens share the cross node's bucket).  Copy-and-constraint on the
/// culprit production splits both.
NodeId tourney_cross_local_node();

}  // namespace mpps::trace
