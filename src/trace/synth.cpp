#include "src/trace/synth.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace mpps::trace {

std::uint32_t bucket_for(NodeId node, std::uint32_t key_class,
                         std::uint32_t num_buckets) {
  std::uint64_t h = (static_cast<std::uint64_t>(node.value()) << 32) |
                    key_class;
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ull;
  h ^= h >> 33;
  return static_cast<std::uint32_t>(h % num_buckets);
}

SectionBuilder::SectionBuilder(std::string name, std::uint32_t num_buckets) {
  trace_.name = std::move(name);
  trace_.num_buckets = num_buckets;
}

void SectionBuilder::begin_cycle(std::uint32_t wme_changes) {
  trace_.cycles.emplace_back();
  trace_.cycles.back().wme_changes = wme_changes;
  current_index_.clear();
}

TraceActivation& SectionBuilder::lookup(ActivationId id) {
  // Reverse scan: parents are almost always recent, and cross-product
  // cycles have 10k+ activations.
  for (auto it = current_index_.rbegin(); it != current_index_.rend(); ++it) {
    if (it->first == id.value()) {
      return trace_.cycles.back().activations[it->second];
    }
  }
  throw TraceFormatError("SectionBuilder: unknown activation id " +
                         std::to_string(id.value()) + " in current cycle");
}

ActivationId SectionBuilder::push(TraceActivation act) {
  act.id = ActivationId{next_id_++};
  auto& cycle = trace_.cycles.back();
  current_index_.emplace_back(act.id.value(), cycle.activations.size());
  cycle.activations.push_back(act);
  return cycle.activations.back().id;
}

ActivationId SectionBuilder::root(Side side, NodeId node,
                                  std::uint32_t key_class) {
  return root_at(side, node, bucket_for(node, key_class, trace_.num_buckets),
                 key_class);
}

ActivationId SectionBuilder::root_at(Side side, NodeId node,
                                     std::uint32_t bucket,
                                     std::uint32_t key_class) {
  TraceActivation act;
  act.parent = ActivationId::invalid();
  act.node = node;
  act.side = side;
  act.bucket = bucket;
  act.key_class = key_class;
  return push(act);
}

ActivationId SectionBuilder::child(ActivationId parent, NodeId node,
                                   std::uint32_t key_class) {
  return child_at(parent, node, bucket_for(node, key_class, trace_.num_buckets),
                  key_class);
}

ActivationId SectionBuilder::child_at(ActivationId parent, NodeId node,
                                      std::uint32_t bucket,
                                      std::uint32_t key_class) {
  ++lookup(parent).successors;
  TraceActivation act;
  act.parent = parent;
  act.node = node;
  act.side = Side::Left;
  act.bucket = bucket;
  act.key_class = key_class;
  return push(act);
}

void SectionBuilder::add_instantiations(ActivationId act, std::uint32_t count) {
  lookup(act).instantiations += count;
}

Trace SectionBuilder::take() {
  validate(trace_);
  Trace out = std::move(trace_);
  trace_ = Trace{};
  return out;
}

// ---------------------------------------------------------------------------
// Rubik: the "good speedups" section.  4 cycles; per cycle ~1528 right
// activations spread evenly (right tokens hash well) and 597 left
// activations concentrated on a cycle-specific window of hash keys — the
// per-cycle complementary busy/idle pattern of Figure 5-5.
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kRubikRightNodes = 48;   // nodes 0..47
constexpr std::uint32_t kRubikLeftRootNodes = 8;  // nodes 48..55
constexpr std::uint32_t kRubikLeftNodes = 24;     // nodes 56..79

/// A key inside cycle `c`'s private window, skewed toward the window head
/// so a handful of (node, key) combinations carry most left activations.
std::uint32_t rubik_window_key(int cycle, Rng& rng) {
  const double u = rng.uniform();
  const auto offset = static_cast<std::uint32_t>(64.0 * u * u * u);
  return static_cast<std::uint32_t>(cycle) * 64 + std::min(offset, 63u);
}

/// A deterministic pseudo-permutation of the bucket space: sorting buckets
/// by a hash scatters each cycle's active quarter across the whole range,
/// so a round-robin deal of buckets to processors clumps the ACTIVE ones —
/// the poor active-bucket distribution the paper analyzes in §5.2.2.
std::vector<std::uint32_t> scattered_buckets(std::uint32_t num_buckets) {
  std::vector<std::uint32_t> perm(num_buckets);
  for (std::uint32_t b = 0; b < num_buckets; ++b) perm[b] = b;
  std::sort(perm.begin(), perm.end(), [](std::uint32_t a, std::uint32_t b) {
    auto mix = [](std::uint32_t v) {
      std::uint64_t h = 0x2545F4914F6CDD1Dull * (v + 1);
      h ^= h >> 29;
      return h;
    };
    return mix(a) < mix(b);
  });
  return perm;
}

/// The bucket for a Rubik left token: confined to cycle `c`'s quarter of
/// the (scattered) bucket space.  Each cycle works on a different part of
/// the cube, so its tokens touch a different set of memories — this is
/// what produces the complementary busy/idle pattern of Figure 5-5.
std::uint32_t rubik_left_bucket(int cycle, NodeId node, std::uint32_t key,
                                std::span<const std::uint32_t> perm) {
  const auto num_buckets = static_cast<std::uint32_t>(perm.size());
  const std::uint32_t window = std::max(1u, num_buckets / 4);
  const std::uint32_t start =
      (static_cast<std::uint32_t>(cycle) * window) % num_buckets;
  return perm[(start + bucket_for(node, key, window)) % num_buckets];
}

}  // namespace

Trace make_rubik_section(std::uint32_t num_buckets, std::uint64_t seed) {
  SectionBuilder builder("rubik", num_buckets);
  Rng rng(seed);
  const std::vector<std::uint32_t> perm = scattered_buckets(num_buckets);
  const std::uint32_t right_quota[4] = {1529, 1529, 1528, 1528};  // Σ = 6114
  constexpr std::uint32_t kLeftRoots = 60;
  constexpr std::uint32_t kLeftChildren = 537;  // per-cycle left = 597

  for (int c = 0; c < 4; ++c) {
    builder.begin_cycle(4);
    std::vector<ActivationId> rights;
    std::vector<ActivationId> lefts;
    rights.reserve(right_quota[c]);
    for (std::uint32_t i = 0; i < right_quota[c]; ++i) {
      const NodeId node{static_cast<std::uint32_t>(rng.below(kRubikRightNodes))};
      rights.push_back(builder.root(
          Side::Right, node, static_cast<std::uint32_t>(rng.below(4096))));
    }
    for (std::uint32_t i = 0; i < kLeftRoots; ++i) {
      const NodeId node{static_cast<std::uint32_t>(
          kRubikRightNodes + rng.below(kRubikLeftRootNodes))};
      const std::uint32_t key = rubik_window_key(c, rng);
      lefts.push_back(builder.root_at(
          Side::Left, node, rubik_left_bucket(c, node, key, perm), key));
    }
    for (std::uint32_t i = 0; i < kLeftChildren; ++i) {
      const bool from_right = lefts.empty() || rng.uniform() < 0.85;
      const ActivationId parent =
          from_right ? rights[rng.below(rights.size())]
                     : lefts[rng.below(lefts.size())];
      const NodeId node{static_cast<std::uint32_t>(
          kRubikRightNodes + kRubikLeftRootNodes + rng.below(kRubikLeftNodes))};
      const std::uint32_t key = rubik_window_key(c, rng);
      lefts.push_back(builder.child_at(
          parent, node, rubik_left_bucket(c, node, key, perm), key));
    }
    for (int i = 0; i < 5; ++i) {
      builder.add_instantiations(lefts[rng.below(lefts.size())]);
    }
  }
  return builder.take();
}

// ---------------------------------------------------------------------------
// Weaver: the "small cycles" section.  4 small cycles; the last one holds
// the paper's bottleneck: three left activations at one *shared* two-input
// node (four successor outputs) generate 120 of the cycle's ~150
// activations.
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kWeaverBottleneck = 100;
constexpr std::uint32_t kWeaverFanout = 4;  // shared successor outputs

/// One plain small cycle: `n_right` right roots, `n_left` left activations
/// forming short chains (the sequential structure that limits small-cycle
/// speedups even before communication costs).
void weaver_plain_cycle(SectionBuilder& builder, Rng& rng,
                        std::uint32_t n_right, std::uint32_t n_left) {
  builder.begin_cycle(2);
  std::vector<ActivationId> rights;
  std::vector<ActivationId> lefts;
  for (std::uint32_t i = 0; i < n_right; ++i) {
    rights.push_back(builder.root(
        Side::Right, NodeId{static_cast<std::uint32_t>(rng.below(12))},
        static_cast<std::uint32_t>(rng.below(64))));
  }
  const std::uint32_t n_left_roots = std::min(n_left, 12u);
  for (std::uint32_t i = 0; i < n_left_roots; ++i) {
    lefts.push_back(builder.root(
        Side::Left, NodeId{12 + static_cast<std::uint32_t>(rng.below(6))},
        static_cast<std::uint32_t>(rng.below(32))));
  }
  for (std::uint32_t i = n_left_roots; i < n_left; ++i) {
    const bool chain = !lefts.empty() && rng.uniform() < 0.5;
    const ActivationId parent = chain ? lefts[rng.below(lefts.size())]
                                      : rights[rng.below(rights.size())];
    lefts.push_back(builder.child(
        parent, NodeId{20 + static_cast<std::uint32_t>(rng.below(10))},
        static_cast<std::uint32_t>(rng.below(32))));
  }
  builder.add_instantiations(lefts[rng.below(lefts.size())]);
}

}  // namespace

Trace make_random_trace(const RandomTraceSpec& spec, std::uint64_t seed) {
  SectionBuilder builder("random", spec.num_buckets);
  Rng rng(seed);
  for (std::uint32_t c = 0; c < spec.cycles; ++c) {
    builder.begin_cycle(1 + static_cast<std::uint32_t>(rng.below(4)));
    std::vector<ActivationId> roots;
    std::vector<ActivationId> lefts;
    for (std::uint32_t i = 0; i < spec.roots_per_cycle; ++i) {
      const Side side =
          rng.uniform() < spec.right_fraction ? Side::Right : Side::Left;
      const ActivationId id = builder.root(
          side, NodeId{static_cast<std::uint32_t>(rng.below(spec.nodes))},
          static_cast<std::uint32_t>(rng.below(spec.key_classes)));
      roots.push_back(id);
      if (rng.uniform() < spec.instantiation_prob) {
        builder.add_instantiations(id);
      }
    }
    const auto n_children = static_cast<std::uint32_t>(
        spec.fanout * static_cast<double>(spec.roots_per_cycle));
    for (std::uint32_t i = 0; i < n_children; ++i) {
      const bool chain = !lefts.empty() && rng.uniform() < spec.chain_prob;
      const ActivationId parent = chain ? lefts[rng.below(lefts.size())]
                                        : roots[rng.below(roots.size())];
      const ActivationId id = builder.child(
          parent, NodeId{static_cast<std::uint32_t>(rng.below(spec.nodes))},
          static_cast<std::uint32_t>(rng.below(spec.key_classes)));
      lefts.push_back(id);
      if (rng.uniform() < spec.instantiation_prob) {
        builder.add_instantiations(id);
      }
    }
  }
  return builder.take();
}

NodeId weaver_bottleneck_node() { return NodeId{kWeaverBottleneck}; }

Trace make_weaver_section(std::uint32_t num_buckets, std::uint64_t seed) {
  SectionBuilder builder("weaver", num_buckets);
  Rng rng(seed);
  // Cycles 1-3: plain small cycles; right quotas 20/20/19, left 69 each.
  weaver_plain_cycle(builder, rng, 20, 69);
  weaver_plain_cycle(builder, rng, 20, 69);
  weaver_plain_cycle(builder, rng, 19, 69);

  // Cycle 4: the bottleneck cycle — 150 activations total (19 right, 131
  // left), 120 of them generated by three activations at the shared node.
  builder.begin_cycle(2);
  std::vector<ActivationId> lefts;
  std::vector<ActivationId> rights;
  for (std::uint32_t i = 0; i < 19; ++i) {
    rights.push_back(builder.root(
        Side::Right, NodeId{static_cast<std::uint32_t>(rng.below(12))},
        static_cast<std::uint32_t>(rng.below(64))));
  }
  for (std::uint32_t i = 0; i < 3; ++i) {
    // A left token reaching the shared bottleneck node; it finds 10
    // matches in the opposite memory, and the node's 4 shared outputs
    // replicate each match: 40 successor tokens per activation.
    const ActivationId hot =
        builder.root(Side::Left, NodeId{kWeaverBottleneck}, i);
    lefts.push_back(hot);
    for (std::uint32_t out = 0; out < kWeaverFanout; ++out) {
      for (std::uint32_t j = 0; j < 10; ++j) {
        lefts.push_back(builder.child(
            hot, NodeId{kWeaverBottleneck + 1 + out}, i * 16 + j));
      }
    }
  }
  for (std::uint32_t i = 0; i < 8; ++i) {
    lefts.push_back(builder.root(
        Side::Left, NodeId{50 + static_cast<std::uint32_t>(rng.below(4))},
        static_cast<std::uint32_t>(rng.below(16))));
  }
  builder.add_instantiations(lefts[rng.below(lefts.size())], 2);
  return builder.take();
}

// ---------------------------------------------------------------------------
// Tourney: the "cross-product" section.  Four small cycles around one heavy
// cycle in which 120 tokens arrive at a two-input node with no equality
// test — the hash cannot discriminate, so all of them land in ONE bucket —
// and each generates ~86 successors (the cross-product).
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kTourneyCross = 300;
constexpr std::uint32_t kTourneyDownstream = 310;  // 8 downstream nodes

void tourney_small_cycle(SectionBuilder& builder, Rng& rng) {
  builder.begin_cycle(2);
  std::vector<ActivationId> rights;
  std::vector<ActivationId> lefts;
  for (std::uint32_t i = 0; i < 16; ++i) {
    rights.push_back(builder.root(
        Side::Right, NodeId{200 + static_cast<std::uint32_t>(rng.below(10))},
        static_cast<std::uint32_t>(rng.below(64))));
  }
  for (std::uint32_t i = 0; i < 10; ++i) {
    lefts.push_back(builder.root(
        Side::Left, NodeId{210 + static_cast<std::uint32_t>(rng.below(6))},
        static_cast<std::uint32_t>(rng.below(32))));
  }
  for (std::uint32_t i = 0; i < 55; ++i) {
    const bool chain = rng.uniform() < 0.4;
    const ActivationId parent = chain ? lefts[rng.below(lefts.size())]
                                      : rights[rng.below(rights.size())];
    lefts.push_back(builder.child(
        parent, NodeId{216 + static_cast<std::uint32_t>(rng.below(8))},
        static_cast<std::uint32_t>(rng.below(32))));
  }
  builder.add_instantiations(lefts[rng.below(lefts.size())]);
}

}  // namespace

NodeId tourney_cross_node() { return NodeId{kTourneyCross}; }
NodeId tourney_cross_local_node() { return NodeId{kTourneyCross + 1}; }

Trace make_tourney_section(std::uint32_t num_buckets, std::uint64_t seed) {
  SectionBuilder builder("tourney", num_buckets);
  Rng rng(seed);
  tourney_small_cycle(builder, rng);
  tourney_small_cycle(builder, rng);

  // The cross-product cycle: 19 right roots and 10407 left activations —
  // 150 feeders arriving at the cross-product node (no equality test, so
  // every one lands in the SAME bucket), each generating 50 successors.
  // 20% of those successors are themselves non-randomized (they hash to
  // the same bucket and are processed locally, exchanging no messages);
  // the rest spread downstream, half of them carrying a hot value two
  // downstream nodes cannot discriminate.  A sparse grandchild cascade
  // (2757 activations) carries the spread work deeper.
  builder.begin_cycle(3);
  std::vector<ActivationId> rights;
  for (std::uint32_t i = 0; i < 19; ++i) {
    rights.push_back(builder.root(
        Side::Right, NodeId{200 + static_cast<std::uint32_t>(rng.below(10))},
        static_cast<std::uint32_t>(rng.below(64))));
  }
  const std::uint32_t cross_bucket =
      bucket_for(NodeId{kTourneyCross}, 0, num_buckets);
  std::vector<ActivationId> children;
  children.reserve(7500);
  for (std::uint32_t i = 0; i < 150; ++i) {
    const ActivationId parent = rights[rng.below(rights.size())];
    // The node has no equality test: whatever values the token carries
    // (key_class), the bucket is the same for everyone.
    const ActivationId feeder = builder.child_at(
        parent, NodeId{kTourneyCross}, cross_bucket, i % 8);
    for (std::uint32_t j = 0; j < 50; ++j) {
      if (j % 5 == 0) {
        // Non-randomized successor: same bucket, local processing.
        children.push_back(builder.child_at(
            feeder, NodeId{kTourneyCross + 1}, cross_bucket, i % 8));
        continue;
      }
      const bool hot = rng.uniform() < 0.7;
      const NodeId node{kTourneyDownstream +
                        static_cast<std::uint32_t>(
                            hot ? rng.below(2) : 2 + rng.below(6))};
      const std::uint32_t key =
          hot ? 0 : static_cast<std::uint32_t>(1 + rng.below(63));
      children.push_back(builder.child(feeder, node, key));
    }
  }
  for (std::uint32_t g = 0; g < 2757; ++g) {
    const ActivationId parent =
        children[(static_cast<std::uint64_t>(g) * 2654435761ull) %
                 children.size()];
    const ActivationId c = builder.child(
        parent, NodeId{320 + static_cast<std::uint32_t>(rng.below(8))},
        static_cast<std::uint32_t>(rng.below(64)));
    if (rng.uniform() < 0.01) builder.add_instantiations(c);
  }

  tourney_small_cycle(builder, rng);
  tourney_small_cycle(builder, rng);
  return builder.take();
}

}  // namespace mpps::trace
