#include "src/trace/record.hpp"

#include <unordered_map>

#include "src/common/error.hpp"

namespace mpps::trace {

std::size_t Trace::total_activations() const {
  std::size_t n = 0;
  for (const auto& c : cycles) n += c.activations.size();
  return n;
}

void validate(const Trace& trace) {
  std::size_t cycle_index = 0;
  for (const auto& cycle : trace.cycles) {
    std::unordered_map<ActivationId, std::uint32_t> children_of;
    std::unordered_map<ActivationId, const TraceActivation*> seen;
    for (const auto& act : cycle.activations) {
      if (act.bucket >= trace.num_buckets) {
        throw TraceFormatError("cycle " + std::to_string(cycle_index) +
                               ": bucket " + std::to_string(act.bucket) +
                               " out of range");
      }
      if (seen.contains(act.id)) {
        throw TraceFormatError("cycle " + std::to_string(cycle_index) +
                               ": duplicate activation id " +
                               std::to_string(act.id.value()));
      }
      if (act.parent.valid()) {
        if (!seen.contains(act.parent)) {
          throw TraceFormatError(
              "cycle " + std::to_string(cycle_index) + ": activation " +
              std::to_string(act.id.value()) +
              " has a parent that does not precede it in the cycle");
        }
        if (act.side != Side::Left) {
          throw TraceFormatError(
              "cycle " + std::to_string(cycle_index) + ": activation " +
              std::to_string(act.id.value()) +
              " is join-generated but not a left activation");
        }
        ++children_of[act.parent];
      }
      seen.emplace(act.id, &act);
    }
    for (const auto& act : cycle.activations) {
      const auto it = children_of.find(act.id);
      const std::uint32_t actual = it == children_of.end() ? 0 : it->second;
      if (actual != act.successors) {
        throw TraceFormatError(
            "cycle " + std::to_string(cycle_index) + ": activation " +
            std::to_string(act.id.value()) + " declares " +
            std::to_string(act.successors) + " successors but has " +
            std::to_string(actual) + " children");
      }
    }
    ++cycle_index;
  }
}

TraceStats compute_stats(const Trace& trace) {
  TraceStats s;
  for (const auto& cycle : trace.cycles) {
    for (const auto& act : cycle.activations) {
      if (act.side == Side::Left) {
        ++s.left;
      } else {
        ++s.right;
      }
      s.instantiations += act.instantiations;
      if (!act.parent.valid()) ++s.root_activations;
    }
  }
  return s;
}

std::vector<std::uint64_t> bucket_activity(const Trace& trace) {
  std::vector<std::uint64_t> out(trace.num_buckets, 0);
  for (const auto& cycle : trace.cycles) {
    for (const auto& act : cycle.activations) ++out[act.bucket];
  }
  return out;
}

std::vector<std::uint64_t> bucket_activity(const Trace& trace,
                                           std::size_t cycle) {
  std::vector<std::uint64_t> out(trace.num_buckets, 0);
  for (const auto& act : trace.cycles[cycle].activations) ++out[act.bucket];
  return out;
}

Trace slice(const Trace& trace, std::size_t first, std::size_t count) {
  if (count == 0 || first >= trace.cycles.size() ||
      count > trace.cycles.size() - first) {
    throw TraceFormatError(
        "slice: cycles [" + std::to_string(first) + ", " +
        std::to_string(first + count) + ") out of range (trace has " +
        std::to_string(trace.cycles.size()) + ")");
  }
  Trace out;
  out.name = trace.name + "[" + std::to_string(first) + ".." +
             std::to_string(first + count) + ")";
  out.num_buckets = trace.num_buckets;
  out.cycles.assign(trace.cycles.begin() + static_cast<std::ptrdiff_t>(first),
                    trace.cycles.begin() +
                        static_cast<std::ptrdiff_t>(first + count));
  validate(out);
  return out;
}

}  // namespace mpps::trace
