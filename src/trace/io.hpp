// Text serialization of traces (the `mpps-trace v1` format documented in
// DESIGN.md §4).
#pragma once

#include <iosfwd>
#include <string_view>

#include "src/trace/record.hpp"

namespace mpps::trace {

void write_trace(std::ostream& os, const Trace& trace);

/// Parses a trace.  Throws TraceFormatError on malformed input; the
/// returned trace has been `validate`d.
Trace read_trace(std::istream& is);

/// Convenience: round-trips through a string (tests).
std::string to_string(const Trace& trace);
Trace from_string(std::string_view text);

}  // namespace mpps::trace
