// Hooks the Rete engine and records an activation trace from a real
// production-system run.  Drive the interpreter cycle by cycle, calling
// `begin_cycle` before each match phase.
//
// The collector is single-threaded and relies on the MatchEngine
// listener contract: activations arrive on the calling thread, in a
// deterministic order with parents preceding children.  The parallel
// engine honors this by merging its workers' records in (sender,
// sequence) order at the end of each phase, so traces recorded from
// `pmatch::ParallelEngine` are reproducible per thread count (and at
// one thread identical to the serial engine's).
#pragma once

#include <string>

#include "src/rete/engine.hpp"
#include "src/trace/record.hpp"

namespace mpps::trace {

class Collector : public rete::ActivationListener {
 public:
  explicit Collector(std::uint32_t num_buckets) {
    trace_.num_buckets = num_buckets;
  }

  /// Marks the start of an MRA cycle; subsequent activations are recorded
  /// into it.  Cycles with no activity are kept (they cost constant-test
  /// time in the simulator, like the paper's small cycles).
  void begin_cycle() { trace_.cycles.emplace_back(); }

  void on_wme_change(const ops5::WmeChange& change) override {
    (void)change;
    if (trace_.cycles.empty()) begin_cycle();
    ++trace_.cycles.back().wme_changes;
  }

  void on_activation(const rete::ActivationRecord& record) override {
    if (trace_.cycles.empty()) begin_cycle();
    TraceActivation act;
    act.id = record.id;
    act.parent = record.parent;
    act.node = record.node;
    act.side = record.side;
    act.tag = record.tag;
    act.bucket = record.bucket;
    act.successors = record.successors;
    act.instantiations = record.instantiations;
    act.key_class = record.bucket;  // the hash's discrimination, as observed
    trace_.cycles.back().activations.push_back(act);
  }

  /// Finalizes and returns the trace.  The collector is left empty.
  Trace take(std::string name) {
    Trace out = std::move(trace_);
    out.name = std::move(name);
    trace_ = Trace{};
    trace_.num_buckets = out.num_buckets;
    return out;
  }

 private:
  Trace trace_;
};

}  // namespace mpps::trace
