#include "src/trace/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "src/common/error.hpp"
#include "src/common/strings.hpp"

namespace mpps::trace {

void write_trace(std::ostream& os, const Trace& trace) {
  os << "# mpps-trace v1\n";
  os << "trace " << (trace.name.empty() ? "unnamed" : trace.name)
     << " buckets " << trace.num_buckets << "\n";
  std::size_t cycle_no = 1;
  for (const auto& cycle : trace.cycles) {
    os << "cycle " << cycle_no++ << "\n";
    os << "wmechange " << cycle.wme_changes << "\n";
    for (const auto& a : cycle.activations) {
      os << "act " << a.id.value() << ' '
         << (a.side == Side::Left ? 'L' : 'R') << " node " << a.node.value()
         << " bucket " << a.bucket << " parent ";
      if (a.parent.valid()) {
        os << a.parent.value();
      } else {
        os << '-';
      }
      os << " succ " << a.successors << " inst " << a.instantiations
         << " key " << a.key_class << " tag "
         << (a.tag == Tag::Plus ? '+' : '-') << "\n";
    }
    os << "endcycle\n";
  }
}

namespace {

[[noreturn]] void bad(std::size_t line_no, const std::string& message) {
  throw TraceFormatError("trace line " + std::to_string(line_no) + ": " +
                         message);
}

std::uint64_t parse_u64(std::string_view s, std::size_t line_no) {
  long v = 0;
  if (!parse_int(s, v) || v < 0) {
    bad(line_no, "expected non-negative integer, got '" + std::string(s) + "'");
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

Trace read_trace(std::istream& is) {
  Trace trace;
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  bool in_cycle = false;
  while (std::getline(is, line)) {
    ++line_no;
    std::string_view sv = trim(line);
    if (sv.empty() || sv.front() == '#') continue;
    const auto fields = split_ws(sv);
    if (fields[0] == "trace") {
      if (fields.size() != 4 || fields[2] != "buckets") {
        bad(line_no, "malformed trace header");
      }
      trace.name = std::string(fields[1]);
      trace.num_buckets =
          static_cast<std::uint32_t>(parse_u64(fields[3], line_no));
      if (trace.num_buckets == 0) bad(line_no, "bucket count must be > 0");
      saw_header = true;
    } else if (fields[0] == "cycle") {
      if (!saw_header) bad(line_no, "cycle before trace header");
      if (in_cycle) bad(line_no, "nested cycle");
      trace.cycles.emplace_back();
      in_cycle = true;
    } else if (fields[0] == "wmechange") {
      if (!in_cycle || fields.size() != 2) bad(line_no, "malformed wmechange");
      trace.cycles.back().wme_changes =
          static_cast<std::uint32_t>(parse_u64(fields[1], line_no));
    } else if (fields[0] == "act") {
      if (!in_cycle) bad(line_no, "act outside cycle");
      // act <id> <L|R> node <n> bucket <b> parent <p|-> succ <s> inst <i>
      //     key <k> tag <+|->
      if (fields.size() != 17) bad(line_no, "malformed act record");
      TraceActivation a;
      a.id = ActivationId{parse_u64(fields[1], line_no)};
      if (fields[2] == "L") {
        a.side = Side::Left;
      } else if (fields[2] == "R") {
        a.side = Side::Right;
      } else {
        bad(line_no, "side must be L or R");
      }
      if (fields[3] != "node") bad(line_no, "expected 'node'");
      a.node = NodeId{static_cast<std::uint32_t>(parse_u64(fields[4], line_no))};
      if (fields[5] != "bucket") bad(line_no, "expected 'bucket'");
      a.bucket = static_cast<std::uint32_t>(parse_u64(fields[6], line_no));
      if (fields[7] != "parent") bad(line_no, "expected 'parent'");
      if (fields[8] == "-") {
        a.parent = ActivationId::invalid();
      } else {
        a.parent = ActivationId{parse_u64(fields[8], line_no)};
      }
      if (fields[9] != "succ") bad(line_no, "expected 'succ'");
      a.successors = static_cast<std::uint32_t>(parse_u64(fields[10], line_no));
      if (fields[11] != "inst") bad(line_no, "expected 'inst'");
      a.instantiations =
          static_cast<std::uint32_t>(parse_u64(fields[12], line_no));
      if (fields[13] != "key") bad(line_no, "expected 'key'");
      a.key_class = static_cast<std::uint32_t>(parse_u64(fields[14], line_no));
      if (fields[15] != "tag") bad(line_no, "expected 'tag'");
      if (fields[16] == "+") {
        a.tag = Tag::Plus;
      } else if (fields[16] == "-") {
        a.tag = Tag::Minus;
      } else {
        bad(line_no, "expected tag + or -");
      }
      trace.cycles.back().activations.push_back(a);
    } else if (fields[0] == "endcycle") {
      if (!in_cycle) bad(line_no, "endcycle outside cycle");
      in_cycle = false;
    } else {
      bad(line_no, "unknown directive '" + std::string(fields[0]) + "'");
    }
  }
  if (in_cycle) bad(line_no, "missing endcycle at end of input");
  if (!saw_header) bad(line_no, "missing trace header");
  validate(trace);
  return trace;
}

std::string to_string(const Trace& trace) {
  std::ostringstream os;
  write_trace(os, trace);
  return os.str();
}

Trace from_string(std::string_view text) {
  std::istringstream is{std::string(text)};
  return read_trace(is);
}

}  // namespace mpps::trace
